//! Per-car appearance prediction — the §4.7 extension.
//!
//! The paper's discussion calls for "possible per-car prediction models
//! for efficient content delivery": if a car's 24×7 matrix says it
//! reliably appears Tuesday 07:00–08:00, a FOTA scheduler can plan for
//! that window. This module implements the natural baseline: estimate
//! `P(car connects in hour-of-week h)` from the training weeks'
//! frequency matrix and threshold it, then score the forecast on
//! held-out weeks. The same train/test split quantifies the paper's
//! claim that "cars can be clustered according to predictability in
//! their behavior".

use crate::matrix::WeeklyMatrix;
use conncar_cdr::CdrRecord;
use conncar_types::{DayOfWeek, StudyPeriod, TimeZone, Timestamp, SECONDS_PER_HOUR};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A trained per-car predictor: the estimated probability the car
/// connects in each hour of the week.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CarPredictor {
    /// `P(connect)` per (weekday, hour) cell.
    pub probabilities: WeeklyMatrix,
    /// Weeks of training data behind the estimate.
    pub training_weeks: u32,
}

impl CarPredictor {
    /// Train on the records of `[0, split_week)` weeks.
    ///
    /// Hours-of-week where the car appeared in `w` of `n` training weeks
    /// get probability `w / n`.
    pub fn train(
        records: &[CdrRecord],
        period: StudyPeriod,
        tz: TimeZone,
        split_week: u32,
    ) -> CarPredictor {
        let cutoff = Timestamp::from_secs(split_week as u64 * 7 * 86_400);
        // Distinct (week, hour-of-week) appearances.
        let mut seen: BTreeSet<(u32, usize)> = BTreeSet::new();
        for r in records.iter().filter(|r| r.start < cutoff) {
            let end = r.end.min(cutoff);
            for (week, how) in hours_of_week(r.start, end, period, tz) {
                seen.insert((week, how));
            }
        }
        let mut probabilities = WeeklyMatrix::zero();
        for (_, how) in &seen {
            let day = DayOfWeek::from_index(how / 24);
            *probabilities.get_mut(day, (how % 24) as u8) += 1.0;
        }
        let n = split_week.max(1) as f64;
        for row in &mut probabilities.values {
            for v in row.iter_mut() {
                *v /= n;
            }
        }
        CarPredictor {
            probabilities,
            training_weeks: split_week,
        }
    }

    /// Predicted presence for one hour-of-week at a probability
    /// threshold.
    pub fn predicts(&self, day: DayOfWeek, hour: u8, threshold: f64) -> bool {
        self.probabilities.get(day, hour) >= threshold
    }

    /// Evaluate on the weeks from `eval_week` to the end of the period.
    pub fn evaluate(
        &self,
        records: &[CdrRecord],
        period: StudyPeriod,
        tz: TimeZone,
        eval_week: u32,
        threshold: f64,
    ) -> PredictionScore {
        let start = Timestamp::from_secs(eval_week as u64 * 7 * 86_400);
        let total_weeks = period.days() / 7;
        if total_weeks <= eval_week {
            return PredictionScore::default();
        }
        // Actual appearances per (week, hour-of-week).
        let mut actual: BTreeSet<(u32, usize)> = BTreeSet::new();
        for r in records.iter().filter(|r| r.end > start) {
            let s = r.start.max(start);
            for (week, how) in hours_of_week(s, r.end, period, tz) {
                if week >= eval_week && week < total_weeks {
                    actual.insert((week, how));
                }
            }
        }
        let mut score = PredictionScore::default();
        for week in eval_week..total_weeks {
            for how in 0..168usize {
                let day = DayOfWeek::from_index(how / 24);
                let predicted = self.predicts(day, (how % 24) as u8, threshold);
                let observed = actual.contains(&(week, how));
                match (predicted, observed) {
                    (true, true) => score.true_positives += 1,
                    (true, false) => score.false_positives += 1,
                    (false, true) => score.false_negatives += 1,
                    (false, false) => score.true_negatives += 1,
                }
            }
        }
        score
    }
}

/// A fleet-level prior blended into each car's own matrix.
///
/// Rare cars have too little history for a pure per-car estimate (two
/// training weeks of a 5-days-per-study car is mostly zeros). The
/// standard fix is shrinkage: blend the car's empirical matrix with the
/// fleet-average matrix, weighting the personal signal by how much
/// history backs it.
#[derive(Debug, Clone)]
pub struct BlendedPredictor {
    /// Fleet-average appearance probability per hour-of-week.
    pub population: WeeklyMatrix,
}

impl BlendedPredictor {
    /// Build the fleet prior from every car's training-window records.
    pub fn fit_population<'a>(
        cars: impl Iterator<Item = &'a [CdrRecord]>,
        period: StudyPeriod,
        tz: TimeZone,
        split_week: u32,
    ) -> BlendedPredictor {
        let mut sum = WeeklyMatrix::zero();
        let mut n = 0usize;
        for records in cars {
            let p = CarPredictor::train(records, period, tz, split_week);
            for (srow, prow) in sum.values.iter_mut().zip(&p.probabilities.values) {
                for (sv, pv) in srow.iter_mut().zip(prow) {
                    *sv += pv;
                }
            }
            n += 1;
        }
        if n > 0 {
            for row in &mut sum.values {
                for v in row.iter_mut() {
                    *v /= n as f64;
                }
            }
        }
        BlendedPredictor { population: sum }
    }

    /// Personal predictor for one car, shrunk toward the fleet prior.
    ///
    /// `strength` plays the role of a pseudo-count: with `a` active
    /// training appearances, the personal weight is `a / (a + strength)`.
    pub fn for_car(
        &self,
        records: &[CdrRecord],
        period: StudyPeriod,
        tz: TimeZone,
        split_week: u32,
        strength: f64,
    ) -> CarPredictor {
        let personal = CarPredictor::train(records, period, tz, split_week);
        let evidence = personal.probabilities.total() * split_week.max(1) as f64;
        let w = evidence / (evidence + strength.max(1e-9));
        let mut blended = WeeklyMatrix::zero();
        for d in 0..7 {
            for h in 0..24 {
                blended.values[d][h] =
                    w * personal.probabilities.values[d][h] + (1.0 - w) * self.population.values[d][h];
            }
        }
        CarPredictor {
            probabilities: blended,
            training_weeks: split_week,
        }
    }
}

/// Trivial reference predictors that contextualize the matrix
/// predictor's scores: a learned model must beat these to be worth the
/// training data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// Predict the car present in every hour of every week.
    AlwaysPresent,
    /// Predict the car absent everywhere.
    NeverPresent,
    /// Predict presence in the classic weekday commute windows
    /// (7–9 and 16–19 local) regardless of the car's history.
    WeekdayCommute,
}

impl Baseline {
    /// The equivalent probability matrix.
    pub fn matrix(self) -> WeeklyMatrix {
        let mut m = WeeklyMatrix::zero();
        match self {
            Baseline::AlwaysPresent => {
                for row in &mut m.values {
                    for v in row.iter_mut() {
                        *v = 1.0;
                    }
                }
            }
            Baseline::NeverPresent => {}
            Baseline::WeekdayCommute => {
                for day in DayOfWeek::ALL.iter().filter(|d| d.is_weekday()) {
                    for hour in [7u8, 8, 16, 17, 18] {
                        *m.get_mut(*day, hour) = 1.0;
                    }
                }
            }
        }
        m
    }

    /// Score this baseline on the evaluation weeks.
    pub fn evaluate(
        self,
        records: &[CdrRecord],
        period: StudyPeriod,
        tz: TimeZone,
        eval_week: u32,
    ) -> PredictionScore {
        let predictor = CarPredictor {
            probabilities: self.matrix(),
            training_weeks: 0,
        };
        predictor.evaluate(records, period, tz, eval_week, 0.5)
    }
}

/// Iterate `(week, hour_of_week)` cells a record overlaps, in the car's
/// local time.
fn hours_of_week(
    start: Timestamp,
    end: Timestamp,
    period: StudyPeriod,
    tz: TimeZone,
) -> Vec<(u32, usize)> {
    if end <= start {
        return Vec::new();
    }
    let sl = tz.to_local(start).as_secs();
    let el = tz.to_local(end).as_secs();
    let first = sl / SECONDS_PER_HOUR;
    let last = (el.saturating_sub(1)) / SECONDS_PER_HOUR;
    (first..=last)
        .map(|habs| {
            let day = habs / 24;
            let week = conncar_types::saturating_u32(day / 7);
            let weekday = period.start_day().plus(day as usize);
            (week, weekday.index() * 24 + (habs % 24) as usize)
        })
        .collect()
}

/// Confusion-matrix counts over (week × hour-of-week) slots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictionScore {
    /// Predicted present, was present.
    pub true_positives: u64,
    /// Predicted present, was absent.
    pub false_positives: u64,
    /// Predicted absent, was present.
    pub false_negatives: u64,
    /// Predicted absent, was absent.
    pub true_negatives: u64,
}

impl PredictionScore {
    /// Precision (`None` when nothing was predicted present).
    pub fn precision(&self) -> Option<f64> {
        let p = self.true_positives + self.false_positives;
        (p > 0).then(|| self.true_positives as f64 / p as f64)
    }

    /// Recall (`None` when the car never appeared).
    pub fn recall(&self) -> Option<f64> {
        let p = self.true_positives + self.false_negatives;
        (p > 0).then(|| self.true_positives as f64 / p as f64)
    }

    /// F1 score.
    pub fn f1(&self) -> Option<f64> {
        match (self.precision(), self.recall()) {
            (Some(p), Some(r)) if p + r > 0.0 => Some(2.0 * p * r / (p + r)),
            _ => None,
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total =
            self.true_positives + self.false_positives + self.false_negatives + self.true_negatives;
        if total == 0 {
            0.0
        } else {
            (self.true_positives + self.true_negatives) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::{BaseStationId, CarId, Carrier, CellId, Duration};

    fn rec(day: u64, hour: u64, dur_mins: u64) -> CdrRecord {
        let start = Timestamp::from_day_hms(day, hour, 15, 0);
        CdrRecord {
            car: CarId(1),
            cell: CellId::new(BaseStationId(1), 0, Carrier::C3),
            start,
            end: start + Duration::from_mins(dur_mins),
        }
    }

    fn period() -> StudyPeriod {
        StudyPeriod::new(DayOfWeek::Monday, 28).unwrap() // 4 weeks
    }

    /// A perfectly regular commuter: Mon & Wed 8 h, every week.
    fn regular_records(weeks: u64) -> Vec<CdrRecord> {
        let mut out = Vec::new();
        for w in 0..weeks {
            out.push(rec(w * 7, 8, 30)); // Monday 08:15
            out.push(rec(w * 7 + 2, 8, 30)); // Wednesday 08:15
        }
        out
    }

    #[test]
    fn regular_car_is_perfectly_predictable() {
        let records = regular_records(4);
        let p = CarPredictor::train(&records, period(), TimeZone::UTC, 2);
        assert_eq!(p.probabilities.get(DayOfWeek::Monday, 8), 1.0);
        assert_eq!(p.probabilities.get(DayOfWeek::Tuesday, 8), 0.0);
        let score = p.evaluate(&records, period(), TimeZone::UTC, 2, 0.5);
        assert_eq!(score.false_positives, 0);
        assert_eq!(score.false_negatives, 0);
        assert_eq!(score.true_positives, 4); // 2 hours × 2 eval weeks
        assert_eq!(score.f1(), Some(1.0));
        assert_eq!(score.accuracy(), 1.0);
    }

    #[test]
    fn training_never_sees_eval_weeks() {
        // Car changes habit in week 3: predictor trained on weeks 0–1
        // must miss the new Friday slot (false negative), not know it.
        let mut records = regular_records(4);
        records.push(rec(3 * 7 + 4, 19, 30)); // Friday evening, week 3
        let p = CarPredictor::train(&records, period(), TimeZone::UTC, 2);
        assert_eq!(p.probabilities.get(DayOfWeek::Friday, 19), 0.0);
        let score = p.evaluate(&records, period(), TimeZone::UTC, 2, 0.5);
        assert_eq!(score.false_negatives, 1);
    }

    #[test]
    fn threshold_trades_precision_for_recall() {
        // Monday every week; Wednesday only in week 0 (probability 0.5
        // over 2 training weeks).
        let records = vec![rec(0, 8, 30), rec(2, 8, 30), rec(7, 8, 30), rec(14, 8, 30), rec(21, 8, 30)];
        let p = CarPredictor::train(&records, period(), TimeZone::UTC, 2);
        // Low threshold predicts both Monday and Wednesday.
        assert!(p.predicts(DayOfWeek::Wednesday, 8, 0.4));
        // High threshold keeps only the certain Monday.
        assert!(!p.predicts(DayOfWeek::Wednesday, 8, 0.9));
        assert!(p.predicts(DayOfWeek::Monday, 8, 0.9));
        let strict = p.evaluate(&records, period(), TimeZone::UTC, 2, 0.9);
        let loose = p.evaluate(&records, period(), TimeZone::UTC, 2, 0.4);
        assert!(loose.false_positives >= strict.false_positives);
    }

    #[test]
    fn empty_history_predicts_nothing() {
        let p = CarPredictor::train(&[], period(), TimeZone::UTC, 2);
        assert_eq!(p.probabilities.total(), 0.0);
        let score = p.evaluate(&[], period(), TimeZone::UTC, 2, 0.5);
        assert_eq!(score.true_positives, 0);
        assert_eq!(score.precision(), None);
        assert_eq!(score.recall(), None);
        assert_eq!(score.f1(), None);
        // All slots are true negatives.
        assert_eq!(score.true_negatives, 2 * 168);
        assert_eq!(score.accuracy(), 1.0);
    }

    #[test]
    fn local_time_alignment() {
        // 13:15 UTC Monday = 08:15 Eastern Monday.
        let records = vec![
            rec(0, 13, 30),
            rec(7, 13, 30),
            rec(14, 13, 30),
            rec(21, 13, 30),
        ];
        let p = CarPredictor::train(&records, period(), TimeZone::US_EASTERN, 2);
        assert_eq!(p.probabilities.get(DayOfWeek::Monday, 8), 1.0);
        let score = p.evaluate(&records, period(), TimeZone::US_EASTERN, 2, 0.5);
        assert_eq!(score.true_positives, 2);
        assert_eq!(score.false_negatives, 0);
    }

    #[test]
    fn blending_shrinks_toward_population() {
        // Fleet of one very active car; a sparse car with no history
        // inherits the population pattern.
        let active = regular_records(4);
        let blender = BlendedPredictor::fit_population(
            [active.as_slice()].into_iter(),
            period(),
            TimeZone::UTC,
            2,
        );
        assert!(blender.population.get(DayOfWeek::Monday, 8) > 0.9);
        // Sparse car (no records): predictor equals the prior.
        let sparse = blender.for_car(&[], period(), TimeZone::UTC, 2, 4.0);
        assert!((sparse.probabilities.get(DayOfWeek::Monday, 8)
            - blender.population.get(DayOfWeek::Monday, 8))
        .abs()
            < 1e-9);
        // A car with strong conflicting history keeps most of its own
        // signal: Friday-only car stays Friday-dominant.
        let friday: Vec<CdrRecord> = (0..2).map(|w| rec(w * 7 + 4, 20, 30)).collect();
        let fri_pred = blender.for_car(&friday, period(), TimeZone::UTC, 2, 1.0);
        assert!(
            fri_pred.probabilities.get(DayOfWeek::Friday, 20)
                > fri_pred.probabilities.get(DayOfWeek::Monday, 8)
        );
    }

    #[test]
    fn blended_weight_grows_with_evidence() {
        let active = regular_records(4);
        let blender = BlendedPredictor::fit_population(
            [active.as_slice()].into_iter(),
            period(),
            TimeZone::UTC,
            2,
        );
        // One observed hour vs four: personal weight increases, so the
        // personal-only cell probability rises toward 1.
        let one: Vec<CdrRecord> = vec![rec(4, 20, 30)];
        let four: Vec<CdrRecord> = (0..2)
            .flat_map(|w| vec![rec(w * 7 + 4, 20, 30), rec(w * 7 + 5, 20, 30)])
            .collect();
        let p1 = blender.for_car(&one, period(), TimeZone::UTC, 2, 4.0);
        let p4 = blender.for_car(&four, period(), TimeZone::UTC, 2, 4.0);
        // The Monday-8 prior cell (never seen by either car) shrinks as
        // evidence grows.
        assert!(
            p4.probabilities.get(DayOfWeek::Monday, 8)
                < p1.probabilities.get(DayOfWeek::Monday, 8) + 1e-12
        );
    }

    #[test]
    fn baselines_bracket_the_matrix_predictor() {
        let records = regular_records(4);
        let matrix = CarPredictor::train(&records, period(), TimeZone::UTC, 2)
            .evaluate(&records, period(), TimeZone::UTC, 2, 0.5);
        let always =
            Baseline::AlwaysPresent.evaluate(&records, period(), TimeZone::UTC, 2);
        let never = Baseline::NeverPresent.evaluate(&records, period(), TimeZone::UTC, 2);
        // Always: perfect recall, terrible precision.
        assert_eq!(always.recall(), Some(1.0));
        assert!(always.precision().unwrap() < 0.05);
        // Never: no predictions at all.
        assert_eq!(never.true_positives + never.false_positives, 0);
        assert_eq!(never.recall(), Some(0.0));
        // The learned predictor beats both on F1.
        assert!(matrix.f1().unwrap() > always.f1().unwrap());
        assert!(never.f1().is_none());
    }

    #[test]
    fn commute_baseline_catches_commuters_only() {
        let records = regular_records(4); // Mon & Wed 08:15
        let commute =
            Baseline::WeekdayCommute.evaluate(&records, period(), TimeZone::UTC, 2);
        // The 08:00 slot is inside the commute window: full recall.
        assert_eq!(commute.recall(), Some(1.0));
        // But it fires on 25 slots/week while the car uses 2.
        assert!(commute.precision().unwrap() < 0.2);
        // A night-shift car is missed entirely.
        let night: Vec<CdrRecord> = (0..4).map(|w| rec(w * 7, 2, 30)).collect();
        let miss = Baseline::WeekdayCommute.evaluate(&night, period(), TimeZone::UTC, 2);
        assert_eq!(miss.recall(), Some(0.0));
    }
}

//! L3 fixture (clean): checked constructors and explicit try_from
//! instead of silent `as` narrowing.

pub fn to_u32(total_secs: u64) -> u32 {
    conncar_types::saturating_u32(total_secs)
}

pub fn bucket(start_ts: u64) -> u16 {
    u16::try_from(start_ts / 900).unwrap_or(u16::MAX)
}

pub fn prbs(prb_count: u64) -> u8 {
    u8::try_from(prb_count).unwrap_or(u8::MAX)
}

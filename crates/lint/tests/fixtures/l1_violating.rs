//! L1 fixture: hash collections in a deterministic-output crate.
//! Linted as if it lived at `crates/analysis/src/fixture.rs`.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn tally(xs: &[u32]) -> HashMap<u32, usize> {
    let mut seen = HashSet::new();
    let mut counts = HashMap::new();
    for x in xs {
        if seen.insert(*x) {
            *counts.entry(*x).or_insert(0) += 1;
        }
    }
    counts
}

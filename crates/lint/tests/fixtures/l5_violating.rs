//! L5 fixture: lock-discipline violations.
//! Linted as if it lived at `crates/serve/src/fixture.rs`.

use std::sync::Mutex;

pub struct Shared {
    state: Mutex<Vec<u8>>,
    slots: Mutex<Vec<u8>>,
}

pub fn blocking_under_guard(s: &Shared, r: &mut impl std::io::Read) -> usize {
    let mut state = s.state.lock().unwrap();
    let mut buf = [0u8; 4];
    let _ = r.read_exact(&mut buf);
    state.push(buf[0]);
    state.len()
}

pub fn inverted_order(s: &Shared) -> usize {
    let slots = match s.slots.lock() {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    };
    let state = match s.state.lock() {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    };
    slots.len() + state.len()
}

pub fn cross_crate_under_guard(s: &Shared) -> usize {
    let state = s.state.lock().expect("state lock");
    conncar_store::heavy_scan(&state)
}

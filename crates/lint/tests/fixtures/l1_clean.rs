//! L1 fixture (clean): ordered collections, deterministic iteration.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

pub fn tally(xs: &[u32]) -> BTreeMap<u32, usize> {
    let mut seen = BTreeSet::new();
    let mut counts = BTreeMap::new();
    for x in xs {
        if seen.insert(*x) {
            *counts.entry(*x).or_insert(0) += 1;
        }
    }
    counts
}

//! L8 fixture: registry and resolve sites in perfect agreement —
//! every registered key resolved, every resolved key registered.

pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

pub const METRIC_REGISTRY: &[(&str, MetricKind)] = &[
    ("serve.live.queries", MetricKind::Counter),
    ("serve.live.queue_depth", MetricKind::Gauge),
    ("serve.live.e2e_ns", MetricKind::Histogram),
];

pub struct Live;

impl Live {
    pub fn counter(&self, _key: &str) -> u64 {
        0
    }
    pub fn gauge(&self, _key: &str) -> u64 {
        0
    }
    pub fn histogram(&self, _key: &str) -> u64 {
        0
    }
}

pub fn resolve(live: &Live) -> u64 {
    let a = live.counter("serve.live.queries");
    let b = live.gauge("serve.live.queue_depth");
    let c = live.histogram("serve.live.e2e_ns");
    // Strings that are not resolve-site arguments are none of L8's
    // business, even when they look like keys.
    let label = "serve.live.unrelated_string";
    a + b + c + label.len() as u64
}

//! L4 fixture: panic sites on the ingest path.
//! Linted as if it were `crates/cdr/src/io.rs`.

pub fn read_u32(buf: &[u8], at: usize) -> u32 {
    let bytes: [u8; 4] = buf[at..at + 4].try_into().unwrap();
    u32::from_le_bytes(bytes)
}

pub fn parse_count(field: Option<u32>) -> u32 {
    field.expect("count field missing")
}

pub fn reject() {
    panic!("corrupt frame");
}

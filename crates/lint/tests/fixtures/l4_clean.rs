//! L4 fixture (clean): every read is fallible; corrupt input becomes
//! `None`/default, never a panic.

pub fn read_u32(buf: &[u8], at: usize) -> Option<u32> {
    match buf.get(at..at.checked_add(4)?)? {
        &[a, b, c, d] => Some(u32::from_le_bytes([a, b, c, d])),
        _ => None,
    }
}

pub fn parse_count(field: Option<u32>) -> u32 {
    field.unwrap_or(0)
}

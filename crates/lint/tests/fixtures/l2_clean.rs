//! L2 fixture (clean): all randomness threaded from a seeded RNG, no
//! wall-clock reads; time comes from the simulated study clock.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

pub fn jitter_ms(rng: &mut ChaCha8Rng) -> u64 {
    rng.gen_range(0..100)
}

pub fn stamp(sim_clock_secs: u64) -> u64 {
    sim_clock_secs * 1_000
}

//! L6 fixture (clean): every wire-derived size passes a registered
//! clamp before sizing an allocation.
//! Linted as if it lived at `crates/serve/src/wire.rs`.

const MAX_FRAME: usize = 16 << 20;

pub fn read_claimed(r: &mut impl std::io::Read) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

pub fn slurp_capped(r: &mut impl std::io::Read) -> std::io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    std::io::Read::take(std::io::Read::by_ref(r), 1 << 20).read_to_end(&mut buf)?;
    Ok(buf)
}

pub fn reserve_clamped(out: &mut Vec<u8>, n: u32) {
    out.reserve((n as usize).min(MAX_FRAME));
}

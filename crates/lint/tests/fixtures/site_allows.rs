use std::collections::HashMap; // lint:allow(L1): fixture import; the map below is the real site

// lint:allow(L1): lookup-only map, never iterated
pub fn preceding(m: &HashMap<u32, u32>) -> Option<u32> {
    m.get(&1).copied()
}

pub fn trailing(total_secs: u64) -> u32 {
    total_secs as u32 // lint:allow(L3): caller clamps to the study period first
}

// lint:allow(L2): nothing below reads a clock — this allow is stale
pub fn stale() {}

// lint:allow(L9): unknown rule id — malformed marker
pub fn malformed() {}

//! L2 fixture: ambient entropy and wall-clock reads.
//! Linted as if it lived at `crates/fleet/src/fixture.rs`.

use rand::Rng;

pub fn jitter_ms() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..100)
}

pub fn stamp() -> u64 {
    let now = std::time::SystemTime::now();
    let t0 = std::time::Instant::now();
    let _ = t0;
    now.elapsed().map(|d| d.as_millis() as u64).unwrap_or(0)
}

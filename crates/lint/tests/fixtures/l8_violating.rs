//! L8 fixture: a metric registry that disagrees with its resolve
//! sites in both directions. Linted as if it lived at
//! `crates/serve/src/metrics.rs` (paired with a second synthetic file
//! in the test when cross-file emission is exercised).

pub enum MetricKind {
    Counter,
    Gauge,
}

pub const METRIC_REGISTRY: &[(&str, MetricKind)] = &[
    ("serve.live.queries", MetricKind::Counter),
    ("serve.live.orphaned_key", MetricKind::Gauge),
];

pub struct Live;

impl Live {
    pub fn counter(&self, _key: &str) -> u64 {
        0
    }
    pub fn gauge(&self, _key: &str) -> u64 {
        0
    }
}

pub fn resolve(live: &Live) -> (u64, u64) {
    // Registered: fine.
    let ok = live.counter("serve.live.queries");
    // Typo'd key: L8 at this line.
    let typo = live.counter("serve.live.queris");
    (ok, typo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_keys_are_exempt() {
        // Ad-hoc keys in test code must not trip the rule.
        let _ = Live.counter("test.only.key");
    }
}

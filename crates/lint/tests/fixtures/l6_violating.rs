//! L6 fixture: allocations sized by attacker-claimed lengths.
//! Linted as if it lived at `crates/serve/src/wire.rs`.

pub fn read_claimed(r: &mut impl std::io::Read) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

pub fn slurp(r: &mut impl std::io::Read) -> std::io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    Ok(buf)
}

pub fn reserve_claimed(out: &mut Vec<u8>, n: u32) {
    out.reserve(n as usize);
}

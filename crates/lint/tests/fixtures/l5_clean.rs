//! L5 fixture (clean): guards released before I/O, ranked nesting,
//! matches (not unwraps) on lock results.
//! Linted as if it lived at `crates/serve/src/fixture.rs`.

use std::sync::Mutex;

pub struct Shared {
    state: Mutex<Vec<u8>>,
    slots: Mutex<Vec<u8>>,
}

pub fn copy_then_write(s: &Shared, w: &mut impl std::io::Write) {
    let snapshot: Vec<u8> = {
        let state = match s.state.lock() {
            Ok(g) => g,
            Err(_) => return,
        };
        state.clone()
    };
    let _ = w.write_all(&snapshot);
}

pub fn ranked_nesting(s: &Shared) -> usize {
    let state = match s.state.lock() {
        Ok(g) => g,
        Err(_) => return 0,
    };
    let slots = match s.slots.lock() {
        Ok(g) => g,
        Err(_) => return 0,
    };
    state.len() + slots.len()
}

pub fn drop_before_blocking(s: &Shared, r: &mut impl std::io::Read) {
    let mut buf = [0u8; 4];
    let state = match s.state.lock() {
        Ok(g) => g,
        Err(_) => return,
    };
    let want = state.len();
    drop(state);
    let _ = r.read_exact(&mut buf);
    let _ = want;
}

//! L7 fixture: panic-capable expressions on the serve request path.
//! Linted as if it lived at `crates/serve/src/request.rs`.

pub fn first_cell(cells: &[u32], at: usize) -> u32 {
    cells[at]
}

pub fn header_byte(bytes: &[u8]) -> u64 {
    bytes[0] as u64
}

pub fn claimed_end(start: u64, len: u32) -> u64 {
    start + len as u64
}

pub fn must_have(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn reject() -> u32 {
    panic!("bad request")
}

//! L7 fixture (clean): fallible access, checked arithmetic, typed
//! degradation — same shapes as the violating twin, panic-free.
//! Linted as if it lived at `crates/serve/src/request.rs`.

pub fn first_cell(cells: &[u32], at: usize) -> Option<u32> {
    cells.get(at).copied()
}

pub fn header_byte(bytes: &[u8]) -> Option<u64> {
    Some(u64::from(*bytes.first()?))
}

pub fn claimed_end(start: u64, len: u32) -> Option<u64> {
    start.checked_add(u64::from(len))
}

pub fn must_have(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

pub fn full_range_is_fine(bytes: &[u8]) -> &[u8] {
    &bytes[..]
}

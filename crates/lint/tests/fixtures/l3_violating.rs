//! L3 fixture: narrowing casts on time/PRB-named quantities.
//! Linted as if it lived at `crates/analysis/src/fixture.rs`.

pub fn to_u32(total_secs: u64) -> u32 {
    total_secs as u32
}

pub fn bucket(start_ts: u64) -> u16 {
    (start_ts / 900) as u16
}

pub fn prbs(prb_count: u64) -> u8 {
    prb_count as u8
}

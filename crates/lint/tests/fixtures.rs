//! Fixture tests for the linter itself: one violating and one clean
//! example per rule, asserting exact rule ids and line numbers.
//!
//! Fixtures are linted under synthetic paths that place them in each
//! rule's scope (e.g. the L4 pair pretends to be `crates/cdr/src/io.rs`,
//! the only place that rule applies); the sources live as plain text
//! under `fixtures/` and are never compiled.

use conncar_lint::rules::lint_source;

/// (rule, line, what) triples for every violation in a file.
fn hits(path: &str, src: &str) -> Vec<(&'static str, u32, String)> {
    lint_source(path, src)
        .into_iter()
        .map(|v| (v.rule, v.line, v.what))
        .collect()
}

#[test]
fn l1_flags_hash_collections_per_line() {
    let found = hits(
        "crates/analysis/src/fixture.rs",
        include_str!("fixtures/l1_violating.rs"),
    );
    assert_eq!(
        found,
        vec![
            ("L1", 4, "HashMap".to_string()),
            ("L1", 5, "HashSet".to_string()),
            ("L1", 7, "HashMap".to_string()),
            ("L1", 8, "HashSet".to_string()),
            ("L1", 9, "HashMap".to_string()),
        ]
    );
}

#[test]
fn l1_passes_ordered_collections() {
    let found = hits(
        "crates/analysis/src/fixture.rs",
        include_str!("fixtures/l1_clean.rs"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn l1_is_scoped_to_deterministic_crates() {
    // The same hash-using source is fine in a crate whose output is
    // not required to be bit-identical.
    let found = hits(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/l1_violating.rs"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn l2_flags_ambient_entropy_and_time() {
    let found = hits(
        "crates/fleet/src/fixture.rs",
        include_str!("fixtures/l2_violating.rs"),
    );
    assert_eq!(
        found,
        vec![
            ("L2", 7, "thread_rng".to_string()),
            ("L2", 12, "SystemTime".to_string()),
            ("L2", 13, "Instant".to_string()),
        ]
    );
}

#[test]
fn l2_passes_seeded_rng_and_sim_clock() {
    let found = hits(
        "crates/fleet/src/fixture.rs",
        include_str!("fixtures/l2_clean.rs"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn l3_flags_narrowing_casts_on_time_names() {
    let found = hits(
        "crates/analysis/src/fixture.rs",
        include_str!("fixtures/l3_violating.rs"),
    );
    assert_eq!(
        found,
        vec![
            ("L3", 5, "total_secs as u32".to_string()),
            ("L3", 9, "start_ts as u16".to_string()),
            ("L3", 13, "prb_count as u8".to_string()),
        ]
    );
}

#[test]
fn l3_passes_checked_constructors() {
    let found = hits(
        "crates/analysis/src/fixture.rs",
        include_str!("fixtures/l3_clean.rs"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn l4_flags_panic_sites_on_the_ingest_path() {
    let found = hits(
        "crates/cdr/src/io.rs",
        include_str!("fixtures/l4_violating.rs"),
    );
    // `crates/cdr/src/io.rs` is on the L7 hot path too: the unchecked
    // index on line 5 is L7's (L4 defers unwrap-family reporting to the
    // stricter in-scope rule, so those stay single-reported).
    assert_eq!(
        found,
        vec![
            ("L4", 5, ".unwrap()".to_string()),
            ("L7", 5, "buf[..] unchecked index".to_string()),
            ("L4", 10, ".expect()".to_string()),
            ("L4", 14, "panic!".to_string()),
        ]
    );
}

#[test]
fn l4_passes_fallible_reads() {
    let found = hits(
        "crates/cdr/src/io.rs",
        include_str!("fixtures/l4_clean.rs"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn l4_is_scoped_to_the_three_pipeline_files() {
    // The same panicking source is legal elsewhere (rules L1–L3 still
    // apply there, but nothing in the fixture trips them).
    let found = hits(
        "crates/cdr/src/faults.rs",
        include_str!("fixtures/l4_violating.rs"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn l1_applies_to_the_obs_crate() {
    // The telemetry crate's output (RUN_OBS.json) must be
    // bit-reproducible, so it sits in the deterministic scope too.
    let found = hits(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/l1_violating.rs"),
    );
    assert!(!found.is_empty());
    assert!(found.iter().all(|(rule, ..)| *rule == "L1"));
}

#[test]
fn obs_clock_is_the_single_pinned_instant_exemption() {
    // The real clock.rs, linted under its real path, must trip L2 on
    // `Instant` (the rule is not special-cased for obs) and the
    // repo's lint.toml must carry exactly one entry that silences it.
    // If MonotonicClock moves, or someone deletes the allowlist entry,
    // or a second Instant exemption creeps in, this test fails.
    let clock_src = include_str!("../../obs/src/clock.rs");
    let violations = lint_source("crates/obs/src/clock.rs", clock_src);
    assert!(
        violations.iter().any(|v| v.rule == "L2" && v.what == "Instant"),
        "clock.rs no longer reads Instant outside tests; drop the lint.toml entry"
    );
    assert!(
        violations.iter().all(|v| v.rule == "L2"),
        "clock.rs trips more than L2: {violations:?}"
    );

    let allow = conncar_lint::config::parse_allowlist(include_str!("../../../lint.toml")).unwrap();
    let instant_entries: Vec<_> = allow
        .iter()
        .filter(|e| e.rule == "L2" && e.contains.as_deref() == Some("Instant"))
        .collect();
    let sanctioned: Vec<&str> = instant_entries
        .iter()
        .filter(|e| e.path.starts_with("crates/"))
        .map(|e| e.path.as_str())
        .collect();
    assert_eq!(
        sanctioned,
        vec!["crates/obs/src/clock.rs"],
        "crates/obs/src/clock.rs must be the only in-crate Instant exemption"
    );
    for v in &violations {
        assert!(
            instant_entries.iter().any(|e| e.matches(v)),
            "lint.toml entry no longer covers {v:?}"
        );
    }
}

#[test]
fn site_allows_silence_checked_sites_and_flag_their_own_rot() {
    let src = include_str!("fixtures/site_allows.rs");
    let (violations, site_allowed) =
        conncar_lint::lint_source_with_sites("crates/analysis/src/fixture.rs", src);

    // Trailing (line 1), preceding (line 3 covering line 4), and a
    // trailing L3 allow (line 9) each silence their one site.
    let covered: Vec<(&str, u32, u32)> = site_allowed
        .iter()
        .map(|(v, s)| (v.rule, v.line, s.line))
        .collect();
    assert_eq!(covered, vec![("L1", 1, 1), ("L1", 4, 3), ("L3", 9, 9)]);

    // The stale allow (line 12) and the malformed marker (line 15) are
    // gate failures in their own right.
    let remaining: Vec<(&str, u32)> = violations.iter().map(|v| (v.rule, v.line)).collect();
    assert_eq!(remaining, vec![("A2", 12), ("A1", 15)]);
    assert!(violations[0].what.contains("lint:allow(L2)"), "{:?}", violations[0]);
    assert!(violations[1].what.contains("unknown rule"), "{:?}", violations[1]);
}

#[test]
fn site_allow_scanning_skips_the_lint_crate_itself() {
    // The linter's own sources spell the marker grammar out in docs;
    // under a crates/lint/ path neither allows nor malformed markers
    // register (and no rule applies there either).
    let src = include_str!("fixtures/site_allows.rs");
    let (violations, site_allowed) =
        conncar_lint::lint_source_with_sites("crates/lint/src/fixture.rs", src);
    assert_eq!(violations, vec![]);
    assert_eq!(site_allowed, vec![]);
}

#[test]
fn l5_flags_lock_discipline_breaches() {
    // The four L5 families in one fixture: unwrap on a lock result,
    // blocking I/O under a live guard, a lock-order inversion
    // (`state` taken while `slots` is held — the declared order is
    // state before slots), and a cross-crate call under a guard.
    let found = hits(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/l5_violating.rs"),
    );
    assert_eq!(
        found,
        vec![
            ("L5", 12, ".unwrap() on `state` lock result".to_string()),
            ("L5", 14, "read_exact() while `state` guard is live".to_string()),
            ("L5", 24, "`state` acquired while `slots` guard is live".to_string()),
            ("L5", 32, ".expect() on `state` lock result".to_string()),
            ("L5", 33, "cross-crate call heavy_scan() while `state` guard is live".to_string()),
        ]
    );
}

#[test]
fn l5_passes_scoped_guards_and_declared_order() {
    // Block-scoped guards released before I/O, nesting in the declared
    // `state` -> `slots` order, and an explicit `drop(guard)` before a
    // read: all clean.
    let found = hits(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/l5_clean.rs"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn l5_applies_workspace_wide_but_not_to_bench() {
    // Lock discipline is not a serve-only concern: the same source
    // trips identically in any product crate. The bench harness (and
    // the linter itself) are the only exclusions.
    let found = hits(
        "crates/analysis/src/fixture.rs",
        include_str!("fixtures/l5_violating.rs"),
    );
    assert_eq!(found.len(), 5);
    assert!(found.iter().all(|(rule, ..)| *rule == "L5"));
    let bench = hits(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/l5_violating.rs"),
    );
    assert_eq!(bench, vec![]);
}

#[test]
fn l6_flags_unclamped_wire_sized_allocations() {
    // The acceptance case: an allocation sized straight from a
    // wire-claimed length (no clamp between decode and `vec![0u8; n]`)
    // must be caught, as must an uncapped `read_to_end` and a
    // `reserve` fed by a raw length parameter.
    let found = hits(
        "crates/serve/src/wire.rs",
        include_str!("fixtures/l6_violating.rs"),
    );
    assert_eq!(
        found,
        vec![
            ("L6", 8, "vec![..; len] sized from unclamped wire-derived length".to_string()),
            ("L6", 15, "read_to_end() without a Read::take cap".to_string()),
            ("L6", 20, "reserve() sized from unclamped wire-derived length".to_string()),
        ]
    );
}

#[test]
fn l6_passes_clamped_allocations() {
    // The same shapes with a `MAX_FRAME` comparison, a `Read::take`
    // cap, and a `.min(..)` clamp respectively: all registered clamps.
    let found = hits(
        "crates/serve/src/wire.rs",
        include_str!("fixtures/l6_clean.rs"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn l6_is_scoped_to_wire_facing_files() {
    // The engine never touches raw bytes; its allocations are sized by
    // trusted store metadata, so the rule does not apply there.
    let found = hits(
        "crates/serve/src/engine.rs",
        include_str!("fixtures/l6_violating.rs"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn l7_flags_panic_capable_hot_path_expressions() {
    let found = hits(
        "crates/serve/src/request.rs",
        include_str!("fixtures/l7_violating.rs"),
    );
    assert_eq!(
        found,
        vec![
            ("L7", 5, "cells[..] unchecked index".to_string()),
            ("L7", 9, "bytes[..] unchecked index".to_string()),
            ("L7", 13, "`+` on wire-derived `len`".to_string()),
            ("L7", 17, ".unwrap()".to_string()),
            ("L7", 21, "panic!".to_string()),
        ]
    );
}

#[test]
fn l7_passes_fallible_access_and_checked_arithmetic() {
    // `.get()`/`first()?`/`checked_add`/`unwrap_or` twins of the
    // violating fixture, plus the full-range `&bytes[..]` exemption
    // (an infallible slice).
    let found = hits(
        "crates/serve/src/request.rs",
        include_str!("fixtures/l7_clean.rs"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn l7_is_scoped_to_hot_path_files() {
    // The store crate is deliberately out of scope: its inputs are
    // already cleaned and its kernels are covered by proptests + miri
    // (see DESIGN.md §14).
    let found = hits(
        "crates/store/src/fixture.rs",
        include_str!("fixtures/l7_violating.rs"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn test_code_is_exempt_everywhere() {
    let src = r#"
pub fn good() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {
        let _ = HashMap::<u32, u32>::new();
        let _ = std::time::Instant::now();
        Some(1u32).unwrap();
    }
}
"#;
    assert_eq!(hits("crates/cdr/src/io.rs", src), vec![]);
}

#[test]
fn the_workspace_is_clean_and_its_residue_is_pinned() {
    // The real gate over the real tree: zero unexempted violations,
    // and the per-site allow residue is exactly the reviewed set —
    // a new allow (or a lost one) fails here until this pin is
    // updated alongside its justification.
    let mut root = std::env::current_dir().expect("cwd");
    while !root.join("lint.toml").is_file() {
        assert!(root.pop(), "lint.toml not found above the test's cwd");
    }
    let allow = conncar_lint::config::parse_allowlist(
        &std::fs::read_to_string(root.join("lint.toml")).expect("read lint.toml"),
    )
    .expect("parse lint.toml");
    let run = conncar_lint::lint_workspace(&root, &allow).expect("lint workspace");

    let gate: Vec<String> = run
        .violations
        .iter()
        .map(|v| format!("{}:{} [{}] {}", v.path, v.line, v.rule, v.what))
        .collect();
    assert_eq!(gate, Vec::<String>::new(), "unexempted violations");
    assert_eq!(run.unused_entries.len(), 0, "stale lint.toml entries");

    // Concurrency/resource-safety residue only (L3's numeric-cast
    // residue is pinned by its own age and churns independently).
    let mut residue: Vec<(String, String)> = run
        .site_allowed
        .iter()
        .filter(|(v, _)| matches!(v.rule, "L5" | "L6" | "L7"))
        .map(|(v, _)| (v.rule.to_string(), v.path.clone()))
        .collect();
    residue.sort();
    let expect = |rule: &str, path: &str, n: usize| {
        std::iter::repeat((rule.to_string(), path.to_string())).take(n)
    };
    let want: Vec<(String, String)> = expect("L6", "crates/cdr/src/io.rs", 1)
        .chain(expect("L7", "crates/cdr/src/io.rs", 2))
        .chain(expect("L7", "crates/serve/src/engine.rs", 5))
        .chain(expect("L7", "crates/serve/src/request.rs", 2))
        .collect();
    assert_eq!(residue, want, "site-allowed L5/L6/L7 residue drifted");

    // Every surviving allow carries a non-empty justification.
    for (v, s) in &run.site_allowed {
        assert!(
            !s.reason.trim().is_empty(),
            "{}:{} allow for {} has no justification",
            v.path,
            s.line,
            v.rule
        );
    }
}

#[test]
fn l8_flags_both_directions_of_registry_drift() {
    let files = vec![(
        "crates/serve/src/metrics.rs".to_string(),
        include_str!("fixtures/l8_violating.rs").to_string(),
    )];
    let found: Vec<(u32, String)> = conncar_lint::rules::lint_metric_registry(&files)
        .into_iter()
        .map(|v| (v.line, v.what))
        .collect();
    assert_eq!(
        found,
        vec![
            (
                13,
                "registered key \"serve.live.orphaned_key\" has no resolve site".to_string()
            ),
            (
                31,
                ".counter(\"serve.live.queris\") key not in METRIC_REGISTRY".to_string()
            ),
        ]
    );
}

#[test]
fn l8_passes_a_coherent_registry() {
    let files = vec![(
        "crates/serve/src/metrics.rs".to_string(),
        include_str!("fixtures/l8_clean.rs").to_string(),
    )];
    assert_eq!(conncar_lint::rules::lint_metric_registry(&files), vec![]);
}

#[test]
fn l8_reconciles_across_files() {
    // The registry lives in one file; a resolve site in another file
    // still reconciles against it — and a typo there is still caught.
    let files = vec![
        (
            "crates/serve/src/metrics.rs".to_string(),
            include_str!("fixtures/l8_clean.rs").to_string(),
        ),
        (
            "crates/serve/src/stats.rs".to_string(),
            "pub fn render(live: &Live) -> u64 {\n    live.gauge(\"serve.live.queue_depht\")\n}\n"
                .to_string(),
        ),
    ];
    let found: Vec<(String, u32)> = conncar_lint::rules::lint_metric_registry(&files)
        .into_iter()
        .map(|v| (v.path, v.line))
        .collect();
    assert_eq!(found, vec![("crates/serve/src/stats.rs".to_string(), 2)]);
}

#[test]
fn l8_is_silent_without_a_registry() {
    // A workspace with resolve sites but no METRIC_REGISTRY constant
    // (e.g. before the live plane exists) must not fail the gate.
    let files = vec![(
        "crates/serve/src/stats.rs".to_string(),
        "pub fn f(live: &Live) -> u64 {\n    live.counter(\"any.key.at.all\")\n}\n".to_string(),
    )];
    assert_eq!(conncar_lint::rules::lint_metric_registry(&files), vec![]);
}

#[test]
fn l8_skips_the_lint_crate_itself() {
    // This crate's sources and fixtures spell violating examples out;
    // scanning them would make the rule self-triggering.
    let files = vec![(
        "crates/lint/tests/fixtures/l8_violating.rs".to_string(),
        include_str!("fixtures/l8_violating.rs").to_string(),
    )];
    assert_eq!(conncar_lint::rules::lint_metric_registry(&files), vec![]);
}

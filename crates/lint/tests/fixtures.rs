//! Fixture tests for the linter itself: one violating and one clean
//! example per rule, asserting exact rule ids and line numbers.
//!
//! Fixtures are linted under synthetic paths that place them in each
//! rule's scope (e.g. the L4 pair pretends to be `crates/cdr/src/io.rs`,
//! the only place that rule applies); the sources live as plain text
//! under `fixtures/` and are never compiled.

use conncar_lint::rules::lint_source;

/// (rule, line, what) triples for every violation in a file.
fn hits(path: &str, src: &str) -> Vec<(&'static str, u32, String)> {
    lint_source(path, src)
        .into_iter()
        .map(|v| (v.rule, v.line, v.what))
        .collect()
}

#[test]
fn l1_flags_hash_collections_per_line() {
    let found = hits(
        "crates/analysis/src/fixture.rs",
        include_str!("fixtures/l1_violating.rs"),
    );
    assert_eq!(
        found,
        vec![
            ("L1", 4, "HashMap".to_string()),
            ("L1", 5, "HashSet".to_string()),
            ("L1", 7, "HashMap".to_string()),
            ("L1", 8, "HashSet".to_string()),
            ("L1", 9, "HashMap".to_string()),
        ]
    );
}

#[test]
fn l1_passes_ordered_collections() {
    let found = hits(
        "crates/analysis/src/fixture.rs",
        include_str!("fixtures/l1_clean.rs"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn l1_is_scoped_to_deterministic_crates() {
    // The same hash-using source is fine in a crate whose output is
    // not required to be bit-identical.
    let found = hits(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/l1_violating.rs"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn l2_flags_ambient_entropy_and_time() {
    let found = hits(
        "crates/fleet/src/fixture.rs",
        include_str!("fixtures/l2_violating.rs"),
    );
    assert_eq!(
        found,
        vec![
            ("L2", 7, "thread_rng".to_string()),
            ("L2", 12, "SystemTime".to_string()),
            ("L2", 13, "Instant".to_string()),
        ]
    );
}

#[test]
fn l2_passes_seeded_rng_and_sim_clock() {
    let found = hits(
        "crates/fleet/src/fixture.rs",
        include_str!("fixtures/l2_clean.rs"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn l3_flags_narrowing_casts_on_time_names() {
    let found = hits(
        "crates/analysis/src/fixture.rs",
        include_str!("fixtures/l3_violating.rs"),
    );
    assert_eq!(
        found,
        vec![
            ("L3", 5, "total_secs as u32".to_string()),
            ("L3", 9, "start_ts as u16".to_string()),
            ("L3", 13, "prb_count as u8".to_string()),
        ]
    );
}

#[test]
fn l3_passes_checked_constructors() {
    let found = hits(
        "crates/analysis/src/fixture.rs",
        include_str!("fixtures/l3_clean.rs"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn l4_flags_panic_sites_on_the_ingest_path() {
    let found = hits(
        "crates/cdr/src/io.rs",
        include_str!("fixtures/l4_violating.rs"),
    );
    assert_eq!(
        found,
        vec![
            ("L4", 5, ".unwrap()".to_string()),
            ("L4", 10, ".expect()".to_string()),
            ("L4", 14, "panic!".to_string()),
        ]
    );
}

#[test]
fn l4_passes_fallible_reads() {
    let found = hits(
        "crates/cdr/src/io.rs",
        include_str!("fixtures/l4_clean.rs"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn l4_is_scoped_to_the_three_pipeline_files() {
    // The same panicking source is legal elsewhere (rules L1–L3 still
    // apply there, but nothing in the fixture trips them).
    let found = hits(
        "crates/cdr/src/faults.rs",
        include_str!("fixtures/l4_violating.rs"),
    );
    assert_eq!(found, vec![]);
}

#[test]
fn l1_applies_to_the_obs_crate() {
    // The telemetry crate's output (RUN_OBS.json) must be
    // bit-reproducible, so it sits in the deterministic scope too.
    let found = hits(
        "crates/obs/src/fixture.rs",
        include_str!("fixtures/l1_violating.rs"),
    );
    assert!(!found.is_empty());
    assert!(found.iter().all(|(rule, ..)| *rule == "L1"));
}

#[test]
fn obs_clock_is_the_single_pinned_instant_exemption() {
    // The real clock.rs, linted under its real path, must trip L2 on
    // `Instant` (the rule is not special-cased for obs) and the
    // repo's lint.toml must carry exactly one entry that silences it.
    // If MonotonicClock moves, or someone deletes the allowlist entry,
    // or a second Instant exemption creeps in, this test fails.
    let clock_src = include_str!("../../obs/src/clock.rs");
    let violations = lint_source("crates/obs/src/clock.rs", clock_src);
    assert!(
        violations.iter().any(|v| v.rule == "L2" && v.what == "Instant"),
        "clock.rs no longer reads Instant outside tests; drop the lint.toml entry"
    );
    assert!(
        violations.iter().all(|v| v.rule == "L2"),
        "clock.rs trips more than L2: {violations:?}"
    );

    let allow = conncar_lint::config::parse_allowlist(include_str!("../../../lint.toml")).unwrap();
    let instant_entries: Vec<_> = allow
        .iter()
        .filter(|e| e.rule == "L2" && e.contains.as_deref() == Some("Instant"))
        .collect();
    let sanctioned: Vec<&str> = instant_entries
        .iter()
        .filter(|e| e.path.starts_with("crates/"))
        .map(|e| e.path.as_str())
        .collect();
    assert_eq!(
        sanctioned,
        vec!["crates/obs/src/clock.rs"],
        "crates/obs/src/clock.rs must be the only in-crate Instant exemption"
    );
    for v in &violations {
        assert!(
            instant_entries.iter().any(|e| e.matches(v)),
            "lint.toml entry no longer covers {v:?}"
        );
    }
}

#[test]
fn site_allows_silence_checked_sites_and_flag_their_own_rot() {
    let src = include_str!("fixtures/site_allows.rs");
    let (violations, site_allowed) =
        conncar_lint::lint_source_with_sites("crates/analysis/src/fixture.rs", src);

    // Trailing (line 1), preceding (line 3 covering line 4), and a
    // trailing L3 allow (line 9) each silence their one site.
    let covered: Vec<(&str, u32, u32)> = site_allowed
        .iter()
        .map(|(v, s)| (v.rule, v.line, s.line))
        .collect();
    assert_eq!(covered, vec![("L1", 1, 1), ("L1", 4, 3), ("L3", 9, 9)]);

    // The stale allow (line 12) and the malformed marker (line 15) are
    // gate failures in their own right.
    let remaining: Vec<(&str, u32)> = violations.iter().map(|v| (v.rule, v.line)).collect();
    assert_eq!(remaining, vec![("A2", 12), ("A1", 15)]);
    assert!(violations[0].what.contains("lint:allow(L2)"), "{:?}", violations[0]);
    assert!(violations[1].what.contains("unknown rule"), "{:?}", violations[1]);
}

#[test]
fn site_allow_scanning_skips_the_lint_crate_itself() {
    // The linter's own sources spell the marker grammar out in docs;
    // under a crates/lint/ path neither allows nor malformed markers
    // register (and no rule applies there either).
    let src = include_str!("fixtures/site_allows.rs");
    let (violations, site_allowed) =
        conncar_lint::lint_source_with_sites("crates/lint/src/fixture.rs", src);
    assert_eq!(violations, vec![]);
    assert_eq!(site_allowed, vec![]);
}

#[test]
fn test_code_is_exempt_everywhere() {
    let src = r#"
pub fn good() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {
        let _ = HashMap::<u32, u32>::new();
        let _ = std::time::Instant::now();
        Some(1u32).unwrap();
    }
}
"#;
    assert_eq!(hits("crates/cdr/src/io.rs", src), vec![]);
}

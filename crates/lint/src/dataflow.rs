//! Lightweight intraprocedural dataflow over the token stream.
//!
//! Rules L5–L7 need more than token pattern-matching: they reason about
//! *state that flows between tokens* — how long a `MutexGuard` stays
//! live, and which integer values derive from wire- or file-borne
//! bytes. This module derives both from the token stream the lexer
//! already builds, without an AST:
//!
//! - [`guard_spans`] finds every lock acquisition (`.lock()` and the
//!   sanctioned `lock_or_poisoned`/`lock_recover` helpers), names the
//!   lock after the receiver's field, and computes the token span the
//!   guard stays live over (end of the enclosing block for let-bound
//!   guards, shrunk by an explicit `drop(guard)`; end of statement for
//!   temporaries; the `if let`/`while let` body for condition-bound
//!   guards).
//! - [`taint_flags`] tracks *tainted lengths*: values produced by
//!   cursor integer reads, `from_le_bytes`-family decodes, or
//!   length-named integer parameters, propagated through `let`
//!   bindings and cleared by a registered clamp ([`CLAMP_CALLS`]) or a
//!   bounds comparison (`len > MAX` / `len < limit` — the code
//!   demonstrably range-checks the value, which a token scanner cannot
//!   see past).
//!
//! Both analyses are deliberately heuristic: they are tuned to have no
//! false positives on this workspace's idioms, and every miss class is
//! documented in DESIGN.md §14. They run only inside the lint crate, so
//! imprecision costs a missed finding, never a broken build.

use crate::lexer::{Token, TokenKind};

/// Method names that consume a lock result by panicking on poison.
pub const UNWRAP_FAMILY: &[&str] = &[
    "unwrap",
    "expect",
    "unwrap_or_else",
    "unwrap_or_default",
    "unwrap_unchecked",
];

/// Registered clamps: a tainted length that passes through one of
/// these calls in the same expression is considered bounded.
pub const CLAMP_CALLS: &[&str] = &[
    "min",
    "clamp",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
];

/// Cursor-style integer reads: `c.u32()` and friends.
const SOURCE_METHODS: &[&str] = &["u8", "u16", "u32", "u64"];

/// Free/associated decode calls whose result is wire-derived.
const SOURCE_FNS: &[&str] = &[
    "from_le_bytes",
    "from_be_bytes",
    "from_ne_bytes",
    "le_u32_at",
    "le_u64_at",
];

/// Integer parameter types eligible for name-based param tainting.
const TAINTED_PARAM_TYPES: &[&str] = &["u16", "u32", "u64", "usize"];

/// One live lock-guard region.
#[derive(Debug, Clone)]
pub struct GuardSpan {
    /// Lock name — the receiver's final field ident (`state`, `slots`).
    pub lock: String,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Token index of the `lock`/helper ident.
    pub acquire: usize,
    /// First token index after the acquisition expression (past any
    /// chained `?` or unwrap-family call).
    pub body_start: usize,
    /// Exclusive token index where the guard dies.
    pub end: usize,
    /// Unwrap-family method chained directly onto the lock result.
    pub unwrapped: Option<String>,
}

/// Find the matching close punct for the opener at `open`.
pub fn matching_close(toks: &[Token], open: usize, oc: char, cc: char) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct(oc) {
            depth += 1;
        } else if toks[i].is_punct(cc) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Find the matching open punct for the closer at `close`, backwards.
fn matching_open_back(toks: &[Token], close: usize, oc: char, cc: char) -> usize {
    let mut depth = 0i32;
    let mut i = close;
    loop {
        if toks[i].is_punct(cc) {
            depth += 1;
        } else if toks[i].is_punct(oc) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        if i == 0 {
            return 0;
        }
        i -= 1;
    }
}

/// Every live guard region in the file, test code excluded.
pub fn guard_spans(toks: &[Token]) -> Vec<GuardSpan> {
    // Pre-pass: close index for every `{`.
    let mut close_of = vec![usize::MAX; toks.len()];
    {
        let mut stack = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.is_punct('{') {
                stack.push(i);
            } else if t.is_punct('}') {
                if let Some(o) = stack.pop() {
                    close_of[o] = i;
                }
            }
        }
    }

    let mut spans = Vec::new();
    let mut brace_stack: Vec<usize> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_punct('{') {
            brace_stack.push(i);
        } else if toks[i].is_punct('}') {
            brace_stack.pop();
        }
        if toks[i].in_test {
            continue;
        }
        let Some(name) = toks[i].ident() else { continue };
        let called = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        let after_fn = i >= 1 && toks[i - 1].ident() == Some("fn");
        let lock = match name {
            "lock" if called && i >= 1 && toks[i - 1].is_punct('.') => {
                receiver_name(toks, i.saturating_sub(2))
            }
            "lock_or_poisoned" | "lock_recover" if called && !after_fn => {
                first_arg_name(toks, i + 1)
            }
            _ => continue,
        };
        let call_close = matching_close(toks, i + 1, '(', ')');

        // Chained handling of the lock result: optional `?`, then an
        // unwrap-family call.
        let mut j = call_close + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('?')) {
            j += 1;
        }
        let mut unwrapped = None;
        if toks.get(j).is_some_and(|t| t.is_punct('.')) {
            if let Some(m) = toks.get(j + 1).and_then(Token::ident) {
                if UNWRAP_FAMILY.contains(&m) {
                    unwrapped = Some(m.to_string());
                    if toks.get(j + 2).is_some_and(|t| t.is_punct('(')) {
                        j = matching_close(toks, j + 2, '(', ')') + 1;
                    } else {
                        j += 2;
                    }
                }
            }
        }
        let body_start = j;

        // A further method call on the lock chain (`lock_recover(..)
        // .iter_mut()…`) consumes the guard inside this statement:
        // whatever a `let` binds is the chain's result, not the guard,
        // so the guard is a statement temporary.
        let chained_away = toks.get(body_start).is_some_and(|t| t.is_punct('.'))
            && toks.get(body_start + 1).and_then(Token::ident).is_some();

        let end = match if chained_away { None } else { binding_of(toks, i) } {
            Some((var, conditional)) => {
                let mut end = if conditional {
                    // `if let` / `while let`: the guard lives exactly
                    // for the condition's block.
                    let mut k = body_start;
                    while k < toks.len() && !toks[k].is_punct('{') {
                        k += 1;
                    }
                    if k < toks.len() && close_of[k] != usize::MAX {
                        close_of[k]
                    } else {
                        toks.len()
                    }
                } else {
                    match brace_stack.last() {
                        Some(&o) if close_of[o] != usize::MAX => close_of[o],
                        _ => toks.len(),
                    }
                };
                // An explicit `drop(guard)` releases early.
                let mut k = body_start;
                while k + 3 < end.min(toks.len()) {
                    if toks[k].ident() == Some("drop")
                        && toks[k + 1].is_punct('(')
                        && toks[k + 2].ident() == Some(var.as_str())
                        && toks[k + 3].is_punct(')')
                    {
                        end = k;
                        break;
                    }
                    k += 1;
                }
                end
            }
            None => {
                // Temporary guard: lives to the end of the statement.
                let mut k = body_start;
                while k < toks.len() && !toks[k].is_punct(';') {
                    k += 1;
                }
                k
            }
        };

        spans.push(GuardSpan {
            lock,
            line: toks[i].line,
            acquire: i,
            body_start,
            end,
            unwrapped,
        });
    }
    spans
}

/// Name of the receiver chain ending at `j` (the token before the `.`
/// of a method call): the nearest field ident, skipping one balanced
/// call-paren group (`make_table().lock()` names `make_table`).
fn receiver_name(toks: &[Token], mut j: usize) -> String {
    if toks[j].is_punct(')') {
        let open = matching_open_back(toks, j, '(', ')');
        if open == 0 {
            return "unknown".into();
        }
        j = open - 1;
    }
    match toks[j].ident() {
        Some(s) => s.to_string(),
        None => "unknown".into(),
    }
}

/// Last ident of the first argument of the call opening at `open`
/// (`lock_or_poisoned(&self.shared.state, "…")` names `state`).
fn first_arg_name(toks: &[Token], open: usize) -> String {
    let close = matching_close(toks, open, '(', ')');
    let mut name = String::from("unknown");
    let mut depth = 0i32;
    for t in &toks[open + 1..close] {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(',') {
            break;
        } else if depth == 0 {
            if let Some(s) = t.ident() {
                if s != "self" && s != "mut" {
                    name = s.to_string();
                }
            }
        }
    }
    name
}

/// If the acquisition at `i` sits in a `let` statement, return the
/// bound variable and whether the `let` is an `if let`/`while let`
/// condition (whose guard lives only for the condition's block).
fn binding_of(toks: &[Token], i: usize) -> Option<(String, bool)> {
    // Walk back to the statement start looking for `let`.
    let mut l = i;
    loop {
        if l == 0 {
            return None;
        }
        l -= 1;
        let t = &toks[l];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        }
        if t.ident() == Some("let") {
            break;
        }
    }
    let conditional = l >= 1 && matches!(toks[l - 1].ident(), Some("if") | Some("while"));

    // Bound name: last pattern ident before the `=` (or before a
    // top-level `:` type annotation), skipping binding keywords.
    let mut name = None;
    let mut depth = 0i32;
    let mut k = l + 1;
    while k < i {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && (t.is_punct(':') || t.is_punct('=')) {
            break;
        } else if let Some(s) = t.ident() {
            if !matches!(s, "mut" | "ref" | "Ok" | "Err" | "Some" | "None") {
                name = Some(s.to_string());
            }
        }
        k += 1;
    }
    name.map(|n| (n, conditional))
}

/// Is the token at `i` a call producing a wire-derived integer?
pub fn is_source_call(toks: &[Token], i: usize) -> bool {
    let Some(s) = toks[i].ident() else {
        return false;
    };
    if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    (SOURCE_METHODS.contains(&s) && i >= 1 && toks[i - 1].is_punct('.'))
        || SOURCE_FNS.contains(&s)
}

/// Is the token at `i` a registered clamp call?
pub fn is_clamp_call(toks: &[Token], i: usize) -> bool {
    toks[i].ident().is_some_and(|s| CLAMP_CALLS.contains(&s))
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// Does a parameter name look length-like (worth tainting)?
fn length_like(name: &str) -> bool {
    name == "n"
        || name.contains("len")
        || name.contains("count")
        || name.contains("size")
        || name.contains("cap")
}

/// Per-token taint: `flags[i]` is true when token `i` is an identifier
/// holding a wire-derived length at that point in the scan.
///
/// `taint_params` additionally taints length-named integer parameters
/// at function entry — used for the wire-facing files where lengths
/// cross function boundaries (`read_chunk` reads the count,
/// `read_body` allocates from it).
pub fn taint_flags(toks: &[Token], taint_params: bool) -> Vec<bool> {
    let mut flags = vec![false; toks.len()];
    let mut tainted: Vec<String> = Vec::new();
    // Deferred `let`-binding effects: (apply_at, name, add).
    let mut pending: Vec<(usize, String, bool)> = Vec::new();

    for i in 0..toks.len() {
        let mut p = 0;
        while p < pending.len() {
            if i >= pending[p].0 {
                let (_, name, add) = pending.remove(p);
                if add {
                    if !tainted.contains(&name) {
                        tainted.push(name);
                    }
                } else {
                    tainted.retain(|t| *t != name);
                }
            } else {
                p += 1;
            }
        }

        let Some(s) = toks[i].ident() else { continue };
        match s {
            "fn" => {
                tainted.clear();
                pending.clear();
                if taint_params {
                    taint_fn_params(toks, i, &mut tainted);
                }
            }
            "let" => {
                let Some((name, eq)) = let_binding_forward(toks, i) else {
                    continue;
                };
                // Initializer: `=` to the statement's `;`.
                let mut stmt_end = eq + 1;
                let mut depth = 0i32;
                while stmt_end < toks.len() {
                    let t = &toks[stmt_end];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        depth -= 1;
                    } else if t.is_punct(';') && depth <= 0 {
                        break;
                    }
                    stmt_end += 1;
                }
                let mut has_clamp = false;
                let mut has_taint = false;
                for k in eq + 1..stmt_end {
                    if is_clamp_call(toks, k) {
                        has_clamp = true;
                    }
                    if is_source_call(toks, k) {
                        has_taint = true;
                    }
                    if let Some(id) = toks[k].ident() {
                        if tainted.iter().any(|t| t == id) {
                            has_taint = true;
                        }
                    }
                }
                pending.push((stmt_end + 1, name, has_taint && !has_clamp));
            }
            _ => {
                if tainted.iter().any(|n| n == s) {
                    flags[i] = true;
                    // A bounds comparison untaints: the code
                    // demonstrably range-checks the value.
                    let next_cmp = toks
                        .get(i + 1)
                        .is_some_and(|t| t.is_punct('<') || t.is_punct('>'));
                    let prev_cmp =
                        i >= 1 && (toks[i - 1].is_punct('<') || toks[i - 1].is_punct('>'));
                    if next_cmp || prev_cmp {
                        tainted.retain(|n| n != s);
                    }
                }
            }
        }
    }
    flags
}

/// Taint length-named integer parameters of the `fn` at `i`.
fn taint_fn_params(toks: &[Token], i: usize, tainted: &mut Vec<String>) {
    // Find the parameter list's `(`, skipping `<…>` generics.
    let mut k = i + 1;
    let mut angle = 0i32;
    while k < toks.len() {
        if toks[k].is_punct('<') {
            angle += 1;
        } else if toks[k].is_punct('>') {
            angle -= 1;
        } else if toks[k].is_punct('(') && angle <= 0 {
            break;
        } else if toks[k].is_punct('{') || toks[k].is_punct(';') {
            return;
        }
        k += 1;
    }
    if k >= toks.len() {
        return;
    }
    let close = matching_close(toks, k, '(', ')');
    let mut p = k + 1;
    let mut depth = 0i32;
    while p < close {
        let t = &toks[p];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
        } else if depth == 0
            && t.ident().is_some()
            && toks.get(p + 1).is_some_and(|t| t.is_punct(':'))
        {
            let name = t.ident().unwrap_or("");
            // First meaningful type token after `:`.
            let mut q = p + 2;
            while q < close
                && (toks[q].is_punct('&')
                    || toks[q].kind == TokenKind::Lifetime
                    || matches!(toks[q].ident(), Some("mut") | Some("impl") | Some("dyn")))
            {
                q += 1;
            }
            if length_like(name)
                && toks
                    .get(q)
                    .and_then(Token::ident)
                    .is_some_and(|ty| TAINTED_PARAM_TYPES.contains(&ty))
                && !tainted.iter().any(|t| t == name)
            {
                tainted.push(name.to_string());
            }
        }
        p += 1;
    }
}

/// Bound name and `=` index for the `let` at `l` (forward form).
fn let_binding_forward(toks: &[Token], l: usize) -> Option<(String, usize)> {
    let mut name = None;
    let mut depth = 0i32;
    let mut k = l + 1;
    let mut past_colon = false;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(':') {
            past_colon = true;
        } else if depth == 0 && t.is_punct('=') {
            // Plain `=`, not `==`/`=>`.
            let part_of_cmp = toks.get(k + 1).is_some_and(|n| n.is_punct('=') || n.is_punct('>'));
            if !part_of_cmp {
                return name.map(|n| (n, k));
            }
            k += 1;
        } else if t.is_punct(';') || t.is_punct('{') {
            return None;
        } else if !past_colon {
            if let Some(s) = t.ident() {
                if !matches!(s, "mut" | "ref" | "Ok" | "Err" | "Some" | "None") {
                    name = Some(s.to_string());
                }
            }
        }
        k += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    #[test]
    fn let_bound_guard_lives_to_block_end_and_drop_shrinks_it() {
        let toks = tokenize(
            "fn f(m: &Mutex<u32>) {\n\
             let g = m.lock().unwrap();\n\
             use_it(&g);\n\
             drop(g);\n\
             after();\n\
             }",
        );
        let spans = guard_spans(&toks);
        assert_eq!(spans.len(), 1);
        let g = &spans[0];
        assert_eq!(g.lock, "m");
        assert_eq!(g.unwrapped.as_deref(), Some("unwrap"));
        // `after()` sits past the `drop(g)` release.
        let after = toks
            .iter()
            .position(|t| t.ident() == Some("after"))
            .unwrap();
        assert!(g.end <= after);
    }

    #[test]
    fn helper_acquisition_names_the_lock_from_its_first_argument() {
        let toks = tokenize(
            "fn f(s: &Shared) -> Result<()> {\n\
             let state = lock_or_poisoned(&s.shared.state, \"serve.ServiceState\")?;\n\
             Ok(())\n\
             }",
        );
        let spans = guard_spans(&toks);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].lock, "state");
        assert_eq!(spans[0].unwrapped, None);
    }

    #[test]
    fn if_let_guard_is_scoped_to_the_condition_block() {
        let toks = tokenize(
            "fn f(s: &Shared) {\n\
             if let Ok(mut state) = lock_or_poisoned(&s.state, \"w\") {\n\
             state.open = false;\n\
             }\n\
             handle.join();\n\
             }",
        );
        let spans = guard_spans(&toks);
        assert_eq!(spans.len(), 1);
        let join = toks.iter().position(|t| t.ident() == Some("join")).unwrap();
        assert!(spans[0].end < join, "guard must die before the join call");
    }

    #[test]
    fn wire_reads_taint_and_comparisons_untaint() {
        let toks = tokenize(
            "fn f(r: &mut impl Read) {\n\
             let len = u32::from_le_bytes(b) as usize;\n\
             if len > MAX {\n\
             return;\n\
             }\n\
             let v = vec![0u8; len];\n\
             }",
        );
        let flags = taint_flags(&toks, false);
        let positions: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.ident() == Some("len"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(positions.len(), 3);
        // Tainted at the comparison, clean at the allocation.
        assert!(flags[positions[1]]);
        assert!(!flags[positions[2]]);
    }

    #[test]
    fn clamped_initializers_do_not_propagate_taint() {
        let toks = tokenize(
            "fn f(c: &mut Cursor) {\n\
             let n = c.u32() as usize;\n\
             let bounded = n.min(CAP);\n\
             let v = Vec::with_capacity(bounded);\n\
             let w = Vec::with_capacity(n);\n\
             }",
        );
        let flags = taint_flags(&toks, false);
        let bounded_uses: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.ident() == Some("bounded"))
            .map(|(i, _)| i)
            .collect();
        assert!(!flags[bounded_uses[1]], "clamped binding must be clean");
        let n_uses: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.ident() == Some("n"))
            .map(|(i, _)| i)
            .collect();
        assert!(flags[*n_uses.last().unwrap()], "raw length stays tainted");
    }

    #[test]
    fn length_named_params_are_tainted_on_request() {
        let toks = tokenize("fn take(&mut self, n: usize) { self.use_len(n); }");
        let flags = taint_flags(&toks, true);
        let last_n = toks
            .iter()
            .rposition(|t| t.ident() == Some("n"))
            .unwrap();
        assert!(flags[last_n]);
        let untracked = taint_flags(&toks, false);
        assert!(!untracked[last_n]);
    }
}

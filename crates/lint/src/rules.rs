//! The workspace invariant rules: determinism (L1–L4), concurrency/
//! resource safety (L5–L7), and metric-registry coherence (L8).
//!
//! Every per-file rule works on the token stream of one file plus its
//! repo-relative path; test regions (`#[cfg(test)]`, `#[test]`) are
//! skipped. Scoping decisions (which crates a rule applies to) live
//! here so the fixture tests can exercise them with synthetic paths.
//! L5–L7 additionally consume the guard-span and taint analyses from
//! [`crate::dataflow`]. L8 is the one *cross-file* rule
//! ([`lint_metric_registry`]): it reconciles every
//! `.counter("…")`/`.gauge("…")`/`.histogram("…")` string-literal
//! resolve site in the workspace against the central `METRIC_REGISTRY`
//! constant, in both directions.

use crate::dataflow;
use crate::lexer::{tokenize, Token, TokenKind};

/// One rule hit at a concrete source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id: `"L1"`..`"L8"`.
    pub rule: &'static str,
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// What was matched (e.g. `HashMap`, `.unwrap()`).
    pub what: String,
    /// How to fix it.
    pub hint: &'static str,
}

/// Crates whose outputs feed the rendered study report and therefore
/// must be bit-reproducible (rule L1 scope).
const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/analysis/",
    "crates/store/",
    "crates/core/",
    "crates/cdr/",
    "crates/obs/",
];

/// Crates where `as`-narrowing on time/PRB quantities is banned (L3):
/// the deterministic crates plus the generators that produce the
/// timestamps in the first place.
const NARROWING_CRATES: &[&str] = &[
    "crates/analysis/",
    "crates/store/",
    "crates/core/",
    "crates/cdr/",
    "crates/fleet/",
    "crates/types/",
    "crates/obs/",
];

/// Ingest/salvage/clean pipeline files where corrupt input is expected
/// and panicking is a bug (rule L4 scope).
const PANIC_FREE_FILES: &[&str] = &[
    "crates/cdr/src/io.rs",
    "crates/cdr/src/codec.rs",
    "crates/cdr/src/clean.rs",
];

const L1_HINT: &str = "std HashMap/HashSet iteration order is nondeterministic; use \
     BTreeMap/BTreeSet (or sort before folding) so report bytes do not depend on hasher state";
const L2_HINT: &str = "ambient entropy/time breaks seeded reproducibility; thread randomness \
     from conncar_types::seed::SeedSplitter (rand_chacha) and time through an injected \
     conncar_obs::Clock — the only sanctioned Instant lives in crates/obs/src/clock.rs";
const L3_HINT: &str = "`as` narrowing silently truncates time/PRB quantities; use the checked \
     constructors in conncar-types (saturating_u32, hour_of_day_from_hours, secs_from_hours_f64, \
     DayBin::at) or try_from with explicit handling";
const L4_HINT: &str = "corrupt input is expected on the ingest path; return Err and let the \
     caller route the record into IngestReport/Quarantine instead of panicking";

/// Identifier fragments that mark a value as a time / duration / PRB
/// quantity for rule L3. Matched case-insensitively as substrings of
/// the identifiers in the cast's source expression.
const L3_NAME_FRAGMENTS: &[&str] = &[
    "sec", "timestamp", "_ts", "duration", "dur_", "prb", "day", "hour", "minute", "week", "bin_",
    "_bin", "epoch", "elapsed",
];

/// Lint one file's source. `path` must be repo-relative with forward
/// slashes (e.g. `crates/analysis/src/temporal.rs`).
pub fn lint_source(path: &str, src: &str) -> Vec<Violation> {
    let toks = tokenize(src);
    let mut out = Vec::new();
    rule_l1(path, &toks, &mut out);
    rule_l2(path, &toks, &mut out);
    rule_l3(path, &toks, &mut out);
    rule_l4(path, &toks, &mut out);
    rule_l5(path, &toks, &mut out);
    rule_l6(path, &toks, &mut out);
    rule_l7(path, &toks, &mut out);
    out.sort_by(|a, b| (a.line, a.rule, &a.what).cmp(&(b.line, b.rule, &b.what)));
    out.dedup();
    out
}

fn in_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// L1: no `HashMap` / `HashSet` in deterministic-output crates.
///
/// Deliberately a *type-level* ban rather than an iteration-site check:
/// a token linter cannot prove a map is never iterated (serde derives
/// iterate implicitly), and BTree equivalents cost nothing at this
/// scale. Lookup-only maps that measurably matter can be allowlisted.
fn rule_l1(path: &str, toks: &[Token], out: &mut Vec<Violation>) {
    if !in_any(path, DETERMINISTIC_CRATES) {
        return;
    }
    let mut last_line = 0u32;
    for t in toks {
        if t.in_test {
            continue;
        }
        if let Some(name @ ("HashMap" | "HashSet")) = t.ident() {
            // One report per line keeps `HashMap<..> = HashMap::new()`
            // from double-counting.
            if t.line != last_line {
                out.push(Violation {
                    rule: "L1",
                    path: path.to_string(),
                    line: t.line,
                    what: name.to_string(),
                    hint: L1_HINT,
                });
                last_line = t.line;
            }
        }
    }
}

/// L2: no ambient entropy or wall-clock time outside `crates/bench/`.
fn rule_l2(path: &str, toks: &[Token], out: &mut Vec<Violation>) {
    if path.starts_with("crates/bench/") || path.starts_with("crates/lint/") {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        let flagged = match name {
            "thread_rng" | "from_entropy" | "OsRng" | "random" if is_call_or_path(toks, i) => {
                // `random` only as `rand::random` / `random()` — the
                // bare word is too common as a field name.
                name == "thread_rng" || name == "from_entropy" || name == "OsRng"
                    || is_rand_random(toks, i)
            }
            "SystemTime" | "Instant" => true,
            _ => false,
        };
        if flagged {
            out.push(Violation {
                rule: "L2",
                path: path.to_string(),
                line: t.line,
                what: name.to_string(),
                hint: L2_HINT,
            });
        }
    }
}

fn is_call_or_path(toks: &[Token], i: usize) -> bool {
    matches!(
        toks.get(i + 1).map(|t| &t.kind),
        Some(TokenKind::Punct('(')) | Some(TokenKind::Punct(':'))
    ) || matches!(toks.get(i.wrapping_sub(1)).map(|t| &t.kind), Some(TokenKind::Punct(':')))
}

fn is_rand_random(toks: &[Token], i: usize) -> bool {
    i >= 2
        && toks[i - 1].is_punct(':')
        && toks[i - 2].is_punct(':')
        && toks.get(i.wrapping_sub(3)).and_then(Token::ident) == Some("rand")
}

/// L3: no `as {u8,u16,u32,i8,i16,i32}` narrowing of values whose names
/// say they are timestamps, durations, PRB counts, or bin indices.
fn rule_l3(path: &str, toks: &[Token], out: &mut Vec<Violation>) {
    if !in_any(path, NARROWING_CRATES) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.ident() != Some("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1).and_then(Token::ident) else { continue };
        if !matches!(target, "u8" | "u16" | "u32" | "i8" | "i16" | "i32" | "usize") {
            continue;
        }
        // `usize` only counts as narrowing from an explicitly wider
        // source; names rarely tell us the source width, so skip it.
        if target == "usize" {
            continue;
        }
        let names = preceding_expr_idents(toks, i);
        let hit = names.iter().find(|n| {
            let low = n.to_ascii_lowercase();
            L3_NAME_FRAGMENTS.iter().any(|frag| low.contains(frag))
        });
        if let Some(name) = hit {
            out.push(Violation {
                rule: "L3",
                path: path.to_string(),
                line: t.line,
                what: format!("{name} as {target}"),
                hint: L3_HINT,
            });
        }
    }
}

/// Collect the identifiers of the postfix expression ending just before
/// token `i` (the `as`). Walks backwards over idents, `.`/`::` chains,
/// and balanced `(..)` / `[..]` groups; stops at any other token.
fn preceding_expr_idents(toks: &[Token], i: usize) -> Vec<String> {
    let mut names = Vec::new();
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            TokenKind::Ident(s) => names.push(s.clone()),
            TokenKind::Number | TokenKind::Lifetime => {}
            TokenKind::Punct('.') | TokenKind::Punct(':') => {}
            TokenKind::Punct(')') | TokenKind::Punct(']') => {
                let open = if toks[j].is_punct(')') { '(' } else { '[' };
                let close = if open == '(' { ')' } else { ']' };
                let mut depth = 1i32;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if toks[j].is_punct(close) {
                        depth += 1;
                    } else if toks[j].is_punct(open) {
                        depth -= 1;
                    } else if let TokenKind::Ident(s) = &toks[j].kind {
                        names.push(s.clone());
                    }
                }
            }
            _ => break,
        }
    }
    names
}

/// L4: no panicking operations in the ingest/salvage/clean pipeline.
fn rule_l4(path: &str, toks: &[Token], out: &mut Vec<Violation>) {
    if !PANIC_FREE_FILES.contains(&path) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        let what = match name {
            // `.unwrap()` / `.expect(` as method calls.
            "unwrap" | "expect" | "unwrap_unchecked"
                if i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                format!(".{name}()")
            }
            // Panicking macros.
            "panic" | "unreachable" | "todo" | "unimplemented"
                if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                format!("{name}!")
            }
            _ => continue,
        };
        out.push(Violation {
            rule: "L4",
            path: path.to_string(),
            line: t.line,
            what,
            hint: L4_HINT,
        });
    }
}

// ---------------------------------------------------------------------------
// L5–L7: concurrency & resource-safety rules (dataflow-backed).
// ---------------------------------------------------------------------------

/// The serving plane's declared lock acquisition order, outermost
/// first: `ServiceState` (field `state`) before `ConnTable` (field
/// `slots`). Acquiring a lower-ranked lock while a higher-ranked guard
/// is live is a potential deadlock cycle.
const LOCK_ORDER: &[&str] = &["state", "slots"];

/// The one file allowed to consume lock results with unwrap-family
/// calls: the typed poison-recovery helpers themselves.
const L5_SANCTIONED_POISON: &str = "crates/serve/src/sync.rs";

/// Calls that block (or can block indefinitely) and therefore must not
/// run while a `MutexGuard` is live. `Condvar::wait` is deliberately
/// absent — it releases the lock while parked.
const BLOCKING_UNDER_LOCK: &[&str] = &[
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_frame",
    "write",
    "write_all",
    "write_frame",
    "flush",
    "accept",
    "connect",
    "bind",
    "recv",
    "recv_timeout",
    "send_to",
    "sleep",
    "join",
    "shutdown",
];

/// Files that size allocations from attacker- or file-controlled
/// length fields (rule L6 scope): the TCP frame layer, the request
/// decoder, and the CDR stream reader/codec.
const WIRE_FACING_FILES: &[&str] = &[
    "crates/serve/src/wire.rs",
    "crates/serve/src/request.rs",
    "crates/serve/src/stats.rs",
    "crates/cdr/src/io.rs",
    "crates/cdr/src/codec.rs",
];

/// Hot-path files where a panic is an availability bug (rule L7
/// scope): the serve request path and the ingest/salvage path. The
/// store's kernels stay out of scope — their indexing is covered by
/// proptests and the miri job, and their inputs are already cleaned.
const HOT_PATH_FILES: &[&str] = &[
    "crates/serve/src/wire.rs",
    "crates/serve/src/request.rs",
    "crates/serve/src/engine.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/client.rs",
    "crates/serve/src/metrics.rs",
    "crates/serve/src/stats.rs",
    "crates/obs/src/live.rs",
    "crates/cdr/src/io.rs",
    "crates/cdr/src/codec.rs",
    "crates/cdr/src/clean.rs",
];

const L5_BLOCKING_HINT: &str = "blocking while a MutexGuard is live stalls every other \
     thread on that lock; clone/collect what you need under the guard, drop it, then do the I/O";
const L5_ORDER_HINT: &str = "declared lock order is ServiceState (`state`) before ConnTable \
     (`slots`); restructure so locks nest in rank order or release the outer guard first";
const L5_POISON_HINT: &str = "unwrapping a lock result cascades one panicked thread into all \
     of them; use conncar_serve::sync::lock_or_poisoned (Error::Poisoned) and degrade";
const L6_HINT: &str = "wire/file-borne lengths must pass a registered clamp before sizing an \
     allocation: compare against a MAX_ bound, `.min(CAP)`, or cap the reader with Read::take";
const L7_INDEX_HINT: &str = "indexing panics on corrupt input; use .get()/.get_mut() (or a \
     slice pattern) and turn None into a typed Error";
const L7_PANIC_HINT: &str = "a panic on the serve path kills the worker and poisons shared \
     locks; return a typed Error instead";
const L7_ARITH_HINT: &str = "unchecked arithmetic on wire-derived values can overflow in \
     release builds; use checked_/saturating_ operations or validate the range first";

fn rank(lock: &str) -> Option<usize> {
    LOCK_ORDER.iter().position(|n| *n == lock)
}

/// L5: lock discipline — no blocking calls or cross-crate work under a
/// live guard (a), ranked acquisition order (b), and no unwrap-family
/// consumption of lock results outside the sanctioned helper (c).
fn rule_l5(path: &str, toks: &[Token], out: &mut Vec<Violation>) {
    if path.starts_with("crates/lint/") || path.starts_with("crates/bench/") {
        return;
    }
    let guards = dataflow::guard_spans(toks);

    // (c) poison-unwrap on the lock result.
    if path != L5_SANCTIONED_POISON {
        for g in &guards {
            if let Some(m) = &g.unwrapped {
                out.push(Violation {
                    rule: "L5",
                    path: path.to_string(),
                    line: g.line,
                    what: format!(".{m}() on `{}` lock result", g.lock),
                    hint: L5_POISON_HINT,
                });
            }
        }
    }

    // (b) acquisition order: a guard acquired inside another live
    // guard's span must have a strictly higher rank.
    for g2 in &guards {
        for g1 in &guards {
            if g1.acquire < g2.acquire && g2.acquire < g1.end {
                if let (Some(r1), Some(r2)) = (rank(&g1.lock), rank(&g2.lock)) {
                    if r2 <= r1 {
                        out.push(Violation {
                            rule: "L5",
                            path: path.to_string(),
                            line: g2.line,
                            what: format!(
                                "`{}` acquired while `{}` guard is live",
                                g2.lock, g1.lock
                            ),
                            hint: L5_ORDER_HINT,
                        });
                    }
                }
            }
        }
    }

    // (a) blocking and cross-crate calls inside a guard span.
    for g in &guards {
        let end = g.end.min(toks.len());
        for i in g.body_start..end {
            let t = &toks[i];
            if t.in_test {
                continue;
            }
            let Some(name) = t.ident() else { continue };
            if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            // Skip definitions (`fn read(...)`) — only calls block.
            if i >= 1 && toks[i - 1].ident() == Some("fn") {
                continue;
            }
            if BLOCKING_UNDER_LOCK.contains(&name) {
                out.push(Violation {
                    rule: "L5",
                    path: path.to_string(),
                    line: t.line,
                    what: format!("{name}() while `{}` guard is live", g.lock),
                    hint: L5_BLOCKING_HINT,
                });
            } else if cross_crate_call(toks, i) {
                out.push(Violation {
                    rule: "L5",
                    path: path.to_string(),
                    line: t.line,
                    what: format!("cross-crate call {name}() while `{}` guard is live", g.lock),
                    hint: L5_BLOCKING_HINT,
                });
            }
        }
    }
}

/// Is the call at `i` reached through a `conncar_*::` path?
fn cross_crate_call(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
        j -= 3;
        match toks.get(j).and_then(Token::ident) {
            Some(seg) if seg.starts_with("conncar_") => return true,
            Some(_) => {}
            None => return false,
        }
    }
    false
}

/// L6: bounded allocation — in wire-facing files, any allocation sized
/// by a tainted length must carry a registered clamp, and every
/// `read_to_end` must go through a `take`-capped reader.
fn rule_l6(path: &str, toks: &[Token], out: &mut Vec<Violation>) {
    if !WIRE_FACING_FILES.contains(&path) {
        return;
    }
    let flags = dataflow::taint_flags(toks, true);
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        match name {
            "with_capacity" | "reserve" | "reserve_exact" | "resize"
                if toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                let close = dataflow::matching_close(toks, i + 1, '(', ')');
                if span_is_tainted(toks, &flags, i + 2, close)
                    && !span_has_clamp(toks, i + 2, close)
                {
                    out.push(Violation {
                        rule: "L6",
                        path: path.to_string(),
                        line: t.line,
                        what: format!("{name}() sized from unclamped wire-derived length"),
                        hint: L6_HINT,
                    });
                }
            }
            // `vec![elem; len]` — scan the len expression after `;`.
            "vec" if toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
                && toks.get(i + 2).is_some_and(|n| n.is_punct('[')) =>
            {
                let close = dataflow::matching_close(toks, i + 2, '[', ']');
                let semi = (i + 3..close).find(|&k| toks[k].is_punct(';'));
                if let Some(semi) = semi {
                    if span_is_tainted(toks, &flags, semi + 1, close)
                        && !span_has_clamp(toks, semi + 1, close)
                    {
                        out.push(Violation {
                            rule: "L6",
                            path: path.to_string(),
                            line: t.line,
                            what: "vec![..; len] sized from unclamped wire-derived length"
                                .to_string(),
                            hint: L6_HINT,
                        });
                    }
                }
            }
            // `std::io::Read::read_to_end(&mut buf)` always takes the
            // target buffer; a no-arg `read_to_end()` is a different
            // method (e.g. `CdrReader`'s chunk-validated strict drain)
            // and is out of L6's scope.
            "read_to_end" | "read_to_string"
                if i >= 1
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && toks.get(i + 2).is_some_and(|n| !n.is_punct(')')) =>
            {
                if !receiver_chain_has(toks, i.saturating_sub(2), "take") {
                    out.push(Violation {
                        rule: "L6",
                        path: path.to_string(),
                        line: t.line,
                        what: format!("{name}() without a Read::take cap"),
                        hint: L6_HINT,
                    });
                }
            }
            _ => {}
        }
    }
}

fn span_is_tainted(toks: &[Token], flags: &[bool], from: usize, to: usize) -> bool {
    (from..to.min(toks.len())).any(|k| flags[k] || dataflow::is_source_call(toks, k))
}

fn span_has_clamp(toks: &[Token], from: usize, to: usize) -> bool {
    (from..to.min(toks.len())).any(|k| dataflow::is_clamp_call(toks, k))
}

/// Walk the method-receiver chain ending at `j` backwards, looking for
/// a call to `needle` (`r.by_ref().take(CAP).read_to_end(..)`).
fn receiver_chain_has(toks: &[Token], mut j: usize, needle: &str) -> bool {
    loop {
        if toks.get(j).is_some_and(|t| t.is_punct(')')) {
            let mut depth = 1i32;
            while j > 0 && depth > 0 {
                j -= 1;
                if toks[j].is_punct(')') {
                    depth += 1;
                } else if toks[j].is_punct('(') {
                    depth -= 1;
                }
            }
            if j == 0 {
                return false;
            }
            j -= 1;
        }
        match toks.get(j).and_then(Token::ident) {
            Some(s) if s == needle => return true,
            Some(_) => {}
            None => return false,
        }
        if j >= 1 && toks[j - 1].is_punct('.') && j >= 2 {
            j -= 2;
        } else {
            return false;
        }
    }
}

/// L7: panic-freedom on hot paths — unchecked indexing/slicing (a),
/// unwrap-family calls and panic macros outside the L4-covered ingest
/// files (b), and unchecked arithmetic on wire-derived values (c).
fn rule_l7(path: &str, toks: &[Token], out: &mut Vec<Violation>) {
    if !HOT_PATH_FILES.contains(&path) {
        return;
    }
    let flags = dataflow::taint_flags(toks, WIRE_FACING_FILES.contains(&path));
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        // (a) `expr[...]`: a `[` whose preceding token ends a value
        // expression. Attribute/type/pattern brackets follow `#`, `&`,
        // `=`, `(`, `,`, `:` etc. and are naturally excluded, as are
        // brackets after keywords (`let [..] = ..` slice patterns,
        // `for x in [..]` array literals, `&mut [u8]` types). Full
        // range `expr[..]` cannot panic and is allowed.
        if t.is_punct('[') && i > 0 {
            const NOT_A_BASE: &[&str] = &[
                "as", "let", "mut", "in", "ref", "dyn", "impl", "return", "move", "box", "if",
                "else", "while", "match", "loop", "break", "continue",
            ];
            let indexes_value = matches!(
                &toks[i - 1].kind,
                TokenKind::Ident(_) | TokenKind::Punct(')') | TokenKind::Punct(']')
            ) && !toks[i - 1].ident().is_some_and(|k| NOT_A_BASE.contains(&k));
            if indexes_value {
                let close = dataflow::matching_close(toks, i, '[', ']');
                let full_range = (i + 1..close).all(|k| toks[k].is_punct('.'))
                    && close > i + 1;
                if !full_range {
                    let base = toks[i - 1].ident().unwrap_or("expr");
                    out.push(Violation {
                        rule: "L7",
                        path: path.to_string(),
                        line: t.line,
                        what: format!("{base}[..] unchecked index"),
                        hint: L7_INDEX_HINT,
                    });
                }
            }
        }
        let Some(name) = t.ident() else { continue };
        // (b) unwrap-family and panic macros; the cdr ingest files are
        // already covered (stricter) by L4.
        if !PANIC_FREE_FILES.contains(&path) {
            if matches!(name, "unwrap" | "expect" | "unwrap_unchecked")
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                out.push(Violation {
                    rule: "L7",
                    path: path.to_string(),
                    line: t.line,
                    what: format!(".{name}()"),
                    hint: L7_PANIC_HINT,
                });
            }
            if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                out.push(Violation {
                    rule: "L7",
                    path: path.to_string(),
                    line: t.line,
                    what: format!("{name}!"),
                    hint: L7_PANIC_HINT,
                });
            }
        }
        // (c) `+`/`-`/`*` with a tainted operand: check the tokens on
        // either side of this tainted ident for a binary arith op.
        if flags[i] {
            for op_idx in [i.wrapping_sub(1), i + 1] {
                let Some(op) = toks.get(op_idx) else { continue };
                let op_char = match &op.kind {
                    TokenKind::Punct(c @ ('+' | '-' | '*')) => *c,
                    _ => continue,
                };
                // Binary use only: an operand-ish token on each side
                // rules out unary `-`/`*`, `->`, `+=`, and ranges.
                let lhs_ok = op_idx >= 1
                    && matches!(
                        &toks[op_idx - 1].kind,
                        TokenKind::Ident(_)
                            | TokenKind::Number
                            | TokenKind::Punct(')')
                            | TokenKind::Punct(']')
                    );
                let rhs_ok = toks.get(op_idx + 1).is_some_and(|r| {
                    matches!(
                        &r.kind,
                        TokenKind::Ident(_) | TokenKind::Number | TokenKind::Punct('(')
                    )
                });
                if lhs_ok && rhs_ok {
                    out.push(Violation {
                        rule: "L7",
                        path: path.to_string(),
                        line: toks[i].line,
                        what: format!(
                            "`{op_char}` on wire-derived `{}`",
                            toks[i].ident().unwrap_or("?")
                        ),
                        hint: L7_ARITH_HINT,
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// L8: metric-registry coherence (cross-file).
// ---------------------------------------------------------------------

/// Name of the central registry constant L8 reconciles against.
const METRIC_REGISTRY_IDENT: &str = "METRIC_REGISTRY";

/// Resolve-site methods whose string-literal argument is a metric key.
const METRIC_METHODS: &[&str] = &["counter", "gauge", "histogram"];

const L8_EMIT_HINT: &str = "every metric key must be declared in the central METRIC_REGISTRY \
     constant; a typo'd key silently resolves to the sink handle and its recordings vanish \
     from snapshots";
const L8_DEAD_HINT: &str = "a registered key with no resolve site is dead weight in every \
     snapshot; delete the registry entry or wire up the emission";

/// One string literal recovered by the L8 scanner.
struct StrLit {
    /// Literal body (escapes left as written; metric keys contain none).
    text: String,
    /// Byte offset of the opening delimiter in the source.
    start: usize,
}

/// Scan raw source for string literals, returning them plus a masked
/// copy (same length, comments and literal bodies blanked to spaces)
/// safe for structural searches. The shared lexer drops string
/// literals entirely, which is exactly what L8 needs to keep — hence
/// this dedicated scanner. Handles line/nested-block comments, escape
/// sequences, char literals vs lifetimes, and `r#"…"#` raw strings.
fn scan_strings(src: &str) -> (Vec<StrLit>, Vec<u8>) {
    let b = src.as_bytes();
    let mut masked = b.to_vec();
    let mut lits = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    masked[i] = b' ';
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1u32;
                masked[i] = b' ';
                masked[i + 1] = b' ';
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        masked[i] = b' ';
                        i += 1;
                        masked[i] = b' ';
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        masked[i] = b' ';
                        i += 1;
                        masked[i] = b' ';
                    } else if b[i] != b'\n' {
                        masked[i] = b' ';
                    }
                    i += 1;
                }
            }
            b'\'' => {
                // Lifetime (`'a` not closed by a quote) vs char literal.
                let next_is_name = b
                    .get(i + 1)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_');
                if next_is_name && b.get(i + 2) != Some(&b'\'') {
                    i += 2;
                    continue;
                }
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'\'' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' if b.get(i + 1).is_some_and(|c| matches!(c, b'"' | b'#'))
                && !(i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')) =>
            {
                let mut h = i + 1;
                let mut hashes = 0usize;
                while b.get(h) == Some(&b'#') {
                    hashes += 1;
                    h += 1;
                }
                if b.get(h) != Some(&b'"') {
                    i += 1;
                    continue;
                }
                let start = i;
                let body = h + 1;
                let mut j = body;
                let mut end = b.len();
                let mut resume = b.len();
                while j < b.len() {
                    if b[j] == b'"' {
                        let mut k = j + 1;
                        let mut hh = 0usize;
                        while hh < hashes && b.get(k) == Some(&b'#') {
                            hh += 1;
                            k += 1;
                        }
                        if hh == hashes {
                            end = j;
                            resume = k;
                            break;
                        }
                    }
                    j += 1;
                }
                for m in masked.iter_mut().take(end).skip(body) {
                    if *m != b'\n' {
                        *m = b' ';
                    }
                }
                lits.push(StrLit {
                    text: src.get(body..end).unwrap_or("").to_string(),
                    start,
                });
                i = resume;
            }
            b'"' => {
                let start = i;
                i += 1;
                let body = i;
                while i < b.len() {
                    if b[i] == b'\\' {
                        masked[i] = b' ';
                        if let Some(m) = masked.get_mut(i + 1) {
                            if *m != b'\n' {
                                *m = b' ';
                            }
                        }
                        i += 2;
                    } else if b[i] == b'"' {
                        break;
                    } else {
                        if b[i] != b'\n' {
                            masked[i] = b' ';
                        }
                        i += 1;
                    }
                }
                lits.push(StrLit {
                    text: src.get(body..i.min(b.len())).unwrap_or("").to_string(),
                    start,
                });
                i += 1; // past the closing quote
            }
            _ => i += 1,
        }
    }
    (lits, masked)
}

/// 1-based line of byte offset `pos`.
fn line_of(src: &str, pos: usize) -> u32 {
    let upto = src.get(..pos).unwrap_or(src);
    1 + upto.bytes().filter(|b| *b == b'\n').count() as u32
}

/// Lines containing any token the lexer marked as test code.
fn test_lines(src: &str) -> std::collections::BTreeSet<u32> {
    tokenize(src)
        .iter()
        .filter(|t| t.in_test)
        .map(|t| t.line)
        .collect()
}

/// Byte spans `(open, close)` of `METRIC_REGISTRY` *definition* array
/// literals in a masked source: the ident followed by `:` (a use site
/// is followed by `,`, `.`, `)` …), then the first `[` after the `=`,
/// matched to its close.
fn registry_spans(masked: &[u8]) -> Vec<(usize, usize)> {
    let hay = masked;
    let needle = METRIC_REGISTRY_IDENT.as_bytes();
    let mut spans = Vec::new();
    let mut at = 0usize;
    while at + needle.len() <= hay.len() {
        if &hay[at..at + needle.len()] != needle {
            at += 1;
            continue;
        }
        let before_ok =
            at == 0 || !(hay[at - 1].is_ascii_alphanumeric() || hay[at - 1] == b'_');
        let mut j = at + needle.len();
        let after_ok = hay
            .get(j)
            .is_none_or(|c| !(c.is_ascii_alphanumeric() || *c == b'_'));
        at += needle.len();
        if !(before_ok && after_ok) {
            continue;
        }
        while hay.get(j).is_some_and(|c| c.is_ascii_whitespace()) {
            j += 1;
        }
        if hay.get(j) != Some(&b':') {
            continue; // a use site, not the definition
        }
        let Some(eq) = (j..hay.len()).find(|&k| hay[k] == b'=') else {
            continue;
        };
        let Some(open) = (eq..hay.len()).find(|&k| hay[k] == b'[') else {
            continue;
        };
        let mut depth = 0i32;
        let mut close = hay.len();
        for k in open..hay.len() {
            match hay[k] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        spans.push((open, close));
        at = close.min(hay.len());
    }
    spans
}

/// If the literal starting at `start` is the sole argument of a
/// `.counter(` / `.gauge(` / `.histogram(` call, return the method.
fn emission_method(masked: &[u8], start: usize) -> Option<&'static str> {
    let mut j = start;
    // Back over whitespace to what should be the call's `(`.
    while j > 0 && masked[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    if j == 0 || masked[j - 1] != b'(' {
        return None;
    }
    j -= 1;
    while j > 0 && masked[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    let end = j;
    while j > 0 && (masked[j - 1].is_ascii_alphanumeric() || masked[j - 1] == b'_') {
        j -= 1;
    }
    let name = std::str::from_utf8(masked.get(j..end)?).ok()?;
    let method = METRIC_METHODS.iter().find(|m| **m == name)?;
    while j > 0 && masked[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    // Method-call receiver only: `live.counter("…")`, not a free
    // function or a definition.
    (j > 0 && masked[j - 1] == b'.').then_some(*method)
}

/// L8: metric-registry coherence across the whole workspace.
///
/// Collects (a) every key declared in a `METRIC_REGISTRY` constant and
/// (b) every string-literal key passed to a `.counter(` / `.gauge(` /
/// `.histogram(` call outside test code, then reports both directions
/// of disagreement: an emitted key missing from the registry (at the
/// emission line) and a registered key that is never emitted (at the
/// registry line). Files under `crates/lint/` are exempt — this crate
/// spells violating examples out in docs and fixtures. When no file
/// defines a registry the rule is silent, so workspaces without a live
/// metrics plane pay nothing.
///
/// Cross-file by necessity, so it cannot run inside
/// [`lint_source`]; [`crate::lint_workspace`] feeds it every scanned
/// file, and exemptions go through `lint.toml` (site allows are
/// per-file and do not apply).
pub fn lint_metric_registry(files: &[(String, String)]) -> Vec<Violation> {
    let mut registered: Vec<(String, String, u32)> = Vec::new();
    let mut emitted: Vec<(String, String, u32, &'static str)> = Vec::new();
    for (path, src) in files {
        if path.starts_with("crates/lint/") {
            continue;
        }
        let (lits, masked) = scan_strings(src);
        let spans = registry_spans(&masked);
        let in_test = test_lines(src);
        for lit in &lits {
            if spans.iter().any(|(a, z)| lit.start > *a && lit.start < *z) {
                registered.push((lit.text.clone(), path.clone(), line_of(src, lit.start)));
                continue;
            }
            if in_test.contains(&line_of(src, lit.start)) {
                continue;
            }
            if let Some(method) = emission_method(&masked, lit.start) {
                emitted.push((
                    lit.text.clone(),
                    path.clone(),
                    line_of(src, lit.start),
                    method,
                ));
            }
        }
    }
    if registered.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (key, path, line, method) in &emitted {
        if !registered.iter().any(|(k, _, _)| k == key) {
            out.push(Violation {
                rule: "L8",
                path: path.clone(),
                line: *line,
                what: format!(".{method}(\"{key}\") key not in {METRIC_REGISTRY_IDENT}"),
                hint: L8_EMIT_HINT,
            });
        }
    }
    for (key, path, line) in &registered {
        if !emitted.iter().any(|(k, _, _, _)| k == key) {
            out.push(Violation {
                rule: "L8",
                path: path.clone(),
                line: *line,
                what: format!("registered key \"{key}\" has no resolve site"),
                hint: L8_DEAD_HINT,
            });
        }
    }
    out.sort_by(|a, b| (&a.path, a.line, &a.what).cmp(&(&b.path, b.line, &b.what)));
    out.dedup();
    out
}

//! The four determinism / invariant rules (L1–L4).
//!
//! Every rule works on the token stream of one file plus its
//! repo-relative path; test regions (`#[cfg(test)]`, `#[test]`) are
//! skipped. Scoping decisions (which crates a rule applies to) live
//! here so the fixture tests can exercise them with synthetic paths.

use crate::lexer::{tokenize, Token, TokenKind};

/// One rule hit at a concrete source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id: `"L1"`..`"L4"`.
    pub rule: &'static str,
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// What was matched (e.g. `HashMap`, `.unwrap()`).
    pub what: String,
    /// How to fix it.
    pub hint: &'static str,
}

/// Crates whose outputs feed the rendered study report and therefore
/// must be bit-reproducible (rule L1 scope).
const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/analysis/",
    "crates/store/",
    "crates/core/",
    "crates/cdr/",
    "crates/obs/",
];

/// Crates where `as`-narrowing on time/PRB quantities is banned (L3):
/// the deterministic crates plus the generators that produce the
/// timestamps in the first place.
const NARROWING_CRATES: &[&str] = &[
    "crates/analysis/",
    "crates/store/",
    "crates/core/",
    "crates/cdr/",
    "crates/fleet/",
    "crates/types/",
    "crates/obs/",
];

/// Ingest/salvage/clean pipeline files where corrupt input is expected
/// and panicking is a bug (rule L4 scope).
const PANIC_FREE_FILES: &[&str] = &[
    "crates/cdr/src/io.rs",
    "crates/cdr/src/codec.rs",
    "crates/cdr/src/clean.rs",
];

const L1_HINT: &str = "std HashMap/HashSet iteration order is nondeterministic; use \
     BTreeMap/BTreeSet (or sort before folding) so report bytes do not depend on hasher state";
const L2_HINT: &str = "ambient entropy/time breaks seeded reproducibility; thread randomness \
     from conncar_types::seed::SeedSplitter (rand_chacha) and time through an injected \
     conncar_obs::Clock — the only sanctioned Instant lives in crates/obs/src/clock.rs";
const L3_HINT: &str = "`as` narrowing silently truncates time/PRB quantities; use the checked \
     constructors in conncar-types (saturating_u32, hour_of_day_from_hours, secs_from_hours_f64, \
     DayBin::at) or try_from with explicit handling";
const L4_HINT: &str = "corrupt input is expected on the ingest path; return Err and let the \
     caller route the record into IngestReport/Quarantine instead of panicking";

/// Identifier fragments that mark a value as a time / duration / PRB
/// quantity for rule L3. Matched case-insensitively as substrings of
/// the identifiers in the cast's source expression.
const L3_NAME_FRAGMENTS: &[&str] = &[
    "sec", "timestamp", "_ts", "duration", "dur_", "prb", "day", "hour", "minute", "week", "bin_",
    "_bin", "epoch", "elapsed",
];

/// Lint one file's source. `path` must be repo-relative with forward
/// slashes (e.g. `crates/analysis/src/temporal.rs`).
pub fn lint_source(path: &str, src: &str) -> Vec<Violation> {
    let toks = tokenize(src);
    let mut out = Vec::new();
    rule_l1(path, &toks, &mut out);
    rule_l2(path, &toks, &mut out);
    rule_l3(path, &toks, &mut out);
    rule_l4(path, &toks, &mut out);
    out.sort_by(|a, b| (a.line, a.rule, &a.what).cmp(&(b.line, b.rule, &b.what)));
    out.dedup();
    out
}

fn in_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// L1: no `HashMap` / `HashSet` in deterministic-output crates.
///
/// Deliberately a *type-level* ban rather than an iteration-site check:
/// a token linter cannot prove a map is never iterated (serde derives
/// iterate implicitly), and BTree equivalents cost nothing at this
/// scale. Lookup-only maps that measurably matter can be allowlisted.
fn rule_l1(path: &str, toks: &[Token], out: &mut Vec<Violation>) {
    if !in_any(path, DETERMINISTIC_CRATES) {
        return;
    }
    let mut last_line = 0u32;
    for t in toks {
        if t.in_test {
            continue;
        }
        if let Some(name @ ("HashMap" | "HashSet")) = t.ident() {
            // One report per line keeps `HashMap<..> = HashMap::new()`
            // from double-counting.
            if t.line != last_line {
                out.push(Violation {
                    rule: "L1",
                    path: path.to_string(),
                    line: t.line,
                    what: name.to_string(),
                    hint: L1_HINT,
                });
                last_line = t.line;
            }
        }
    }
}

/// L2: no ambient entropy or wall-clock time outside `crates/bench/`.
fn rule_l2(path: &str, toks: &[Token], out: &mut Vec<Violation>) {
    if path.starts_with("crates/bench/") || path.starts_with("crates/lint/") {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        let flagged = match name {
            "thread_rng" | "from_entropy" | "OsRng" | "random" if is_call_or_path(toks, i) => {
                // `random` only as `rand::random` / `random()` — the
                // bare word is too common as a field name.
                name == "thread_rng" || name == "from_entropy" || name == "OsRng"
                    || is_rand_random(toks, i)
            }
            "SystemTime" | "Instant" => true,
            _ => false,
        };
        if flagged {
            out.push(Violation {
                rule: "L2",
                path: path.to_string(),
                line: t.line,
                what: name.to_string(),
                hint: L2_HINT,
            });
        }
    }
}

fn is_call_or_path(toks: &[Token], i: usize) -> bool {
    matches!(
        toks.get(i + 1).map(|t| &t.kind),
        Some(TokenKind::Punct('(')) | Some(TokenKind::Punct(':'))
    ) || matches!(toks.get(i.wrapping_sub(1)).map(|t| &t.kind), Some(TokenKind::Punct(':')))
}

fn is_rand_random(toks: &[Token], i: usize) -> bool {
    i >= 2
        && toks[i - 1].is_punct(':')
        && toks[i - 2].is_punct(':')
        && toks.get(i.wrapping_sub(3)).and_then(Token::ident) == Some("rand")
}

/// L3: no `as {u8,u16,u32,i8,i16,i32}` narrowing of values whose names
/// say they are timestamps, durations, PRB counts, or bin indices.
fn rule_l3(path: &str, toks: &[Token], out: &mut Vec<Violation>) {
    if !in_any(path, NARROWING_CRATES) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.ident() != Some("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1).and_then(Token::ident) else { continue };
        if !matches!(target, "u8" | "u16" | "u32" | "i8" | "i16" | "i32" | "usize") {
            continue;
        }
        // `usize` only counts as narrowing from an explicitly wider
        // source; names rarely tell us the source width, so skip it.
        if target == "usize" {
            continue;
        }
        let names = preceding_expr_idents(toks, i);
        let hit = names.iter().find(|n| {
            let low = n.to_ascii_lowercase();
            L3_NAME_FRAGMENTS.iter().any(|frag| low.contains(frag))
        });
        if let Some(name) = hit {
            out.push(Violation {
                rule: "L3",
                path: path.to_string(),
                line: t.line,
                what: format!("{name} as {target}"),
                hint: L3_HINT,
            });
        }
    }
}

/// Collect the identifiers of the postfix expression ending just before
/// token `i` (the `as`). Walks backwards over idents, `.`/`::` chains,
/// and balanced `(..)` / `[..]` groups; stops at any other token.
fn preceding_expr_idents(toks: &[Token], i: usize) -> Vec<String> {
    let mut names = Vec::new();
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            TokenKind::Ident(s) => names.push(s.clone()),
            TokenKind::Number | TokenKind::Lifetime => {}
            TokenKind::Punct('.') | TokenKind::Punct(':') => {}
            TokenKind::Punct(')') | TokenKind::Punct(']') => {
                let open = if toks[j].is_punct(')') { '(' } else { '[' };
                let close = if open == '(' { ')' } else { ']' };
                let mut depth = 1i32;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if toks[j].is_punct(close) {
                        depth += 1;
                    } else if toks[j].is_punct(open) {
                        depth -= 1;
                    } else if let TokenKind::Ident(s) = &toks[j].kind {
                        names.push(s.clone());
                    }
                }
            }
            _ => break,
        }
    }
    names
}

/// L4: no panicking operations in the ingest/salvage/clean pipeline.
fn rule_l4(path: &str, toks: &[Token], out: &mut Vec<Violation>) {
    if !PANIC_FREE_FILES.contains(&path) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        let what = match name {
            // `.unwrap()` / `.expect(` as method calls.
            "unwrap" | "expect" | "unwrap_unchecked"
                if i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                format!(".{name}()")
            }
            // Panicking macros.
            "panic" | "unreachable" | "todo" | "unimplemented"
                if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                format!("{name}!")
            }
            _ => continue,
        };
        out.push(Violation {
            rule: "L4",
            path: path.to_string(),
            line: t.line,
            what,
            hint: L4_HINT,
        });
    }
}

//! `lint.toml` allowlist: a tiny TOML-subset reader (array-of-tables
//! with string values), parsed by hand so the linter stays
//! dependency-free.
//!
//! ```toml
//! [[allow]]
//! rule = "L2"
//! path = "crates/store/src/query.rs"
//! contains = "Instant"
//! reason = "QueryStats wall-clock accounting; never reaches report bytes"
//! ```
//!
//! `rule` and `path` are required; `contains` (substring of the matched
//! token text) narrows the entry; `reason` is mandatory so every
//! exemption is documented.

use crate::rules::Violation;

/// One documented exemption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id this entry silences (`"L1"`..`"L4"`).
    pub rule: String,
    /// Exact repo-relative path the entry applies to.
    pub path: String,
    /// Optional substring of the violation's matched text.
    pub contains: Option<String>,
    /// Why the exemption exists (required).
    pub reason: String,
    /// Line of the entry header in `lint.toml` (for diagnostics).
    pub toml_line: u32,
}

impl AllowEntry {
    /// Does this entry cover `v`?
    pub fn matches(&self, v: &Violation) -> bool {
        self.rule == v.rule
            && self.path == v.path
            && self.contains.as_ref().is_none_or(|c| v.what.contains(c.as_str()))
    }
}

/// Parse errors carry the offending line for a actionable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line in `lint.toml`.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.msg)
    }
}

/// Parse the allowlist. Empty input (or a file of comments) is a valid
/// empty allowlist.
pub fn parse_allowlist(src: &str) -> Result<Vec<AllowEntry>, ParseError> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<(AllowEntry, bool)> = None; // (entry, has_reason)

    let finish = |cur: Option<(AllowEntry, bool)>,
                  entries: &mut Vec<AllowEntry>|
     -> Result<(), ParseError> {
        if let Some((e, has_reason)) = cur {
            if e.rule.is_empty() || e.path.is_empty() {
                return Err(ParseError {
                    line: e.toml_line,
                    msg: "[[allow]] entry needs both `rule` and `path`".into(),
                });
            }
            if !has_reason {
                return Err(ParseError {
                    line: e.toml_line,
                    msg: "[[allow]] entry needs a `reason` — every exemption is documented".into(),
                });
            }
            entries.push(e);
        }
        Ok(())
    };

    for (idx, raw) in src.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            finish(current.take(), &mut entries)?;
            current = Some((
                AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    contains: None,
                    reason: String::new(),
                    toml_line: lineno,
                },
                false,
            ));
            continue;
        }
        if line.starts_with('[') {
            return Err(ParseError {
                line: lineno,
                msg: format!("unsupported table `{line}` (only [[allow]] entries)"),
            });
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ParseError { line: lineno, msg: format!("expected `key = \"value\"`, got `{line}`") });
        };
        let Some((entry, has_reason)) = current.as_mut() else {
            return Err(ParseError {
                line: lineno,
                msg: "key outside an [[allow]] entry".into(),
            });
        };
        let value = parse_string(value.trim()).ok_or_else(|| ParseError {
            line: lineno,
            msg: format!("value must be a double-quoted string: `{line}`"),
        })?;
        match key.trim() {
            "rule" => entry.rule = value,
            "path" => entry.path = value,
            "contains" => entry.contains = Some(value),
            "reason" => {
                entry.reason = value;
                *has_reason = true;
            }
            other => {
                return Err(ParseError {
                    line: lineno,
                    msg: format!("unknown key `{other}` (rule/path/contains/reason)"),
                })
            }
        }
    }
    finish(current.take(), &mut entries)?;
    Ok(entries)
}

/// Strip a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Parse a double-quoted TOML basic string (escapes: `\\`, `\"`).
fn parse_string(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            }
        } else if c == '"' {
            return None; // unescaped quote mid-string ⇒ not one string
        } else {
            out.push(c);
        }
    }
    Some(out)
}

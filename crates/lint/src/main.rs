//! CLI for the conncar determinism gate.
//!
//! ```text
//! cargo run -p conncar-lint -- --deny [--root <dir>] [--allowlist <file>]
//! ```
//!
//! Exit codes: 0 clean, 1 unallowlisted violations, 2 usage/IO error.
//! (`--deny` is the default and is accepted explicitly so the CI
//! invocation documents its intent.)

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => {} // default behaviour; kept for explicit CI invocations
            "--quiet" | "-q" => quiet = true,
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist_path = Some(PathBuf::from(v)),
                None => return usage("--allowlist needs a value"),
            },
            "--help" | "-h" => {
                println!(
                    "conncar-lint: workspace determinism, concurrency & resource-safety gate (rules L1-L8)\n\
                     usage: conncar-lint [--deny] [--root <dir>] [--allowlist <lint.toml>] [--quiet]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Find the workspace root: the given dir, or walk up to Cargo.toml.
    if !root.join("Cargo.toml").exists() {
        let mut cur = root.clone();
        while let Some(parent) = cur.parent().map(PathBuf::from) {
            if parent.join("Cargo.toml").exists() {
                root = parent;
                break;
            }
            if parent.as_os_str().is_empty() {
                break;
            }
            cur = parent;
        }
    }

    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("lint.toml"));
    let allowlist = if allowlist_path.exists() {
        let src = match std::fs::read_to_string(&allowlist_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: reading {}: {e}", allowlist_path.display());
                return ExitCode::from(2);
            }
        };
        match conncar_lint::config::parse_allowlist(&src) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Vec::new()
    };

    let run = match conncar_lint::lint_workspace(&root, &allowlist) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if !quiet {
        for (v, site) in &run.site_allowed {
            println!(
                "allowed: {} (site allow line {}: {})",
                conncar_lint::format_violation(v),
                site.line,
                site.reason
            );
        }
        for (v, idx) in &run.allowed {
            println!(
                "allowed: {} (lint.toml:{}: {})",
                conncar_lint::format_violation(v),
                allowlist[*idx].toml_line,
                allowlist[*idx].reason
            );
        }
    }
    for entry in &run.unused_entries {
        eprintln!(
            "warning: stale allowlist entry lint.toml:{} ({} {}) matched nothing — remove it",
            entry.toml_line, entry.rule, entry.path
        );
    }
    for v in &run.violations {
        eprintln!("{}", conncar_lint::format_violation(v));
    }

    if run.violations.is_empty() {
        if !quiet {
            println!(
                "conncar-lint: {} files clean ({} site-allowed, {} allowlisted hit{})",
                run.files_scanned,
                run.site_allowed.len(),
                run.allowed.len(),
                if run.allowed.len() == 1 { "" } else { "s" }
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "conncar-lint: {} violation{} (rules are deny-by-default; fix, or document the \
             site with `lint:allow(RULE): justification`)",
            run.violations.len(),
            if run.violations.len() == 1 { "" } else { "s" }
        );
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\nusage: conncar-lint [--deny] [--root <dir>] [--allowlist <file>]");
    ExitCode::from(2)
}

//! Per-site `lint:allow` comments — the in-source, single-site
//! counterpart of the `lint.toml` allowlist.
//!
//! A site allow is a `//` line comment carrying a marker of the shape
//! `lint:allow(RULE): justification`, where `RULE` is one of the rule
//! ids `L1`..`L7`. It silences matching violations of that one rule on
//! the comment's own line (trailing form) or the line directly below
//! (standalone form) — nothing else. The justification travels with
//! the code it excuses, so a refactor that moves or removes the site
//! moves or removes the exemption with it.
//!
//! The comments themselves are linted: a marker that does not parse is
//! an `A1` violation, and a site allow that no longer silences anything
//! is an `A2` violation. Unlike the file-level allowlist (whose stale
//! entries only warn), dead site allows fail the gate — the entire
//! point of pushing exemptions into the source is that they cannot rot
//! in place.
//!
//! The lint crate's own sources are exempt from site scanning: they
//! necessarily spell the marker grammar out in docs and fixtures.

use crate::lexer::tokenize_full;

/// Rule ids a site allow may name.
const RULES: &[&str] = &["L1", "L2", "L3", "L4", "L5", "L6", "L7"];

/// The marker that opens a site allow inside a line comment.
const MARKER: &str = "lint:allow";

/// Hint attached to `A1` (malformed marker) violations.
pub const MALFORMED_HINT: &str = "a site allow is `lint:allow(RULE): justification` in a \
     `//` comment, where RULE is one of L1..L7 and the justification is non-empty";

/// Hint attached to `A2` (stale site allow) violations.
pub const STALE_HINT: &str = "this site allow silences nothing on its own line or the line \
     below; the exemption is dead — remove the comment, or move it back beside the site it \
     documents";

/// One parsed site-allow comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteAllow {
    /// Rule id this comment silences (`"L1"`..`"L7"`).
    pub rule: String,
    /// 1-based line of the comment. The allow covers this line and the
    /// next one.
    pub line: u32,
    /// The justification text after the colon.
    pub reason: String,
}

impl SiteAllow {
    /// Does this allow cover a violation of `rule` at `line`?
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.rule == rule && (line == self.line || line == self.line + 1)
    }
}

/// A comment that contains the marker but does not parse as an allow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedAllow {
    /// 1-based line of the offending comment.
    pub line: u32,
    /// What is wrong with it.
    pub what: String,
}

/// Scan one file's line comments for site-allow markers. Returns the
/// well-formed allows and the malformed markers separately; the caller
/// turns the latter into `A1` violations.
pub fn site_allows(src: &str) -> (Vec<SiteAllow>, Vec<MalformedAllow>) {
    let (_, comments) = tokenize_full(src);
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for c in &comments {
        let Some(at) = c.text.find(MARKER) else { continue };
        match parse_marker(&c.text[at + MARKER.len()..]) {
            Ok((rule, reason)) => allows.push(SiteAllow { rule, line: c.line, reason }),
            Err(what) => malformed.push(MalformedAllow { line: c.line, what }),
        }
    }
    (allows, malformed)
}

/// Parse `(RULE): justification` — the tail of a marker occurrence.
fn parse_marker(tail: &str) -> Result<(String, String), String> {
    let Some(inner) = tail.strip_prefix('(') else {
        return Err(format!("`{MARKER}` must be followed by `(RULE)`"));
    };
    let Some(close) = inner.find(')') else {
        return Err(format!("`{MARKER}(` is missing its closing `)`"));
    };
    let rule = inner[..close].trim();
    if !RULES.contains(&rule) {
        return Err(format!(
            "`{MARKER}({rule})` names an unknown rule (known: L1..L7)"
        ));
    }
    let after = inner[close + 1..].trim_start();
    let Some(reason) = after.strip_prefix(':') else {
        return Err(format!("`{MARKER}({rule})` is missing `: justification`"));
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err(format!(
            "`{MARKER}({rule}):` has an empty justification — every exemption is documented"
        ));
    }
    Ok((rule.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_trailing_and_standalone_forms() {
        let src = "\
let x = total_secs as u32; // lint:allow(L3): clamped by the caller
// lint:allow(L1): lookup-only map, never iterated
let m = HashMap::new();
";
        let (allows, malformed) = site_allows(src);
        assert!(malformed.is_empty(), "{malformed:?}");
        assert_eq!(
            allows,
            vec![
                SiteAllow {
                    rule: "L3".into(),
                    line: 1,
                    reason: "clamped by the caller".into()
                },
                SiteAllow {
                    rule: "L1".into(),
                    line: 2,
                    reason: "lookup-only map, never iterated".into()
                },
            ]
        );
        assert!(allows[0].covers("L3", 1));
        assert!(allows[1].covers("L1", 3));
        assert!(!allows[1].covers("L1", 4));
        assert!(!allows[1].covers("L2", 3));
    }

    #[test]
    fn marker_inside_a_string_literal_is_not_an_allow() {
        let src = "let s = \"// lint:allow(L1): not a comment\";\n";
        let (allows, malformed) = site_allows(src);
        assert!(allows.is_empty());
        assert!(malformed.is_empty());
    }

    #[test]
    fn malformed_markers_are_reported_not_ignored() {
        let cases = [
            ("// lint:allow L1: no parens\n", "must be followed"),
            ("// lint:allow(L9): unknown rule\n", "unknown rule"),
            ("// lint:allow(L2) missing colon\n", "missing `: justification`"),
            ("// lint:allow(L2):   \n", "empty justification"),
        ];
        for (src, expect) in cases {
            let (allows, malformed) = site_allows(src);
            assert!(allows.is_empty(), "{src}");
            assert_eq!(malformed.len(), 1, "{src}");
            assert!(malformed[0].what.contains(expect), "{src}: {}", malformed[0].what);
        }
    }
}

//! conncar-lint: the workspace determinism, concurrency & resource-
//! safety gate.
//!
//! Eight deny-by-default rules (see [`rules`]) run over every `.rs`
//! file under `crates/*/src`, `src/`, and `examples/`: L1–L4 enforce
//! determinism, L5–L7 enforce lock discipline, bounded allocation, and
//! panic-freedom on hot paths (backed by the intraprocedural analyses
//! in [`dataflow`]), and L8 — the one cross-file rule — reconciles
//! every live-metric resolve site against the central
//! `METRIC_REGISTRY` constant in both directions. A hit is suppressed
//! only by a per-site `lint:allow(RULE): justification` comment beside
//! the offending line (see [`site`]) or, for whole-file exemptions that
//! genuinely cannot live in the source, a documented entry in
//! `lint.toml`. (L8 hits span files, so only the `lint.toml` layer
//! applies to them.) Site allows are themselves linted: malformed
//! markers (`A1`) and stale allows that no longer silence anything
//! (`A2`) fail the gate. See DESIGN.md §9 for the rationale behind
//! each rule and the procedure for amending an exemption, and
//! DESIGN.md §14 for the L5–L7 semantics.

pub mod config;
pub mod dataflow;
pub mod lexer;
pub mod rules;
pub mod site;

use config::AllowEntry;
use rules::Violation;
use site::SiteAllow;
use std::path::{Path, PathBuf};

/// Outcome of a full workspace lint run.
#[derive(Debug, Default)]
pub struct LintRun {
    /// Gate failures: unexempted rule violations plus `A1`/`A2` hits
    /// from the site-allow layer.
    pub violations: Vec<Violation>,
    /// Violations covered by an allowlist entry (reported informally).
    pub allowed: Vec<(Violation, usize)>,
    /// Violations covered by a per-site allow comment.
    pub site_allowed: Vec<(Violation, SiteAllow)>,
    /// Allowlist entries that matched nothing (stale — reported so the
    /// residue file shrinks instead of rotting).
    pub unused_entries: Vec<AllowEntry>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Lint one file with site-allow processing: the per-file core of
/// [`lint_workspace`], exposed so fixture tests can drive it with
/// synthetic paths. Returns the violations that remain (including
/// `A1`/`A2` site-allow hygiene hits, sorted by line) and the
/// violations a site allow silenced.
pub fn lint_source_with_sites(
    path: &str,
    src: &str,
) -> (Vec<Violation>, Vec<(Violation, SiteAllow)>) {
    // The lint crate's own sources spell the marker grammar out in
    // docs; scanning them would read documentation as dead allows.
    let (sites, malformed) = if path.starts_with("crates/lint/") {
        (Vec::new(), Vec::new())
    } else {
        site::site_allows(src)
    };

    let mut violations = Vec::new();
    let mut site_allowed = Vec::new();
    for m in malformed {
        violations.push(Violation {
            rule: "A1",
            path: path.to_string(),
            line: m.line,
            what: m.what,
            hint: site::MALFORMED_HINT,
        });
    }
    let mut used = vec![false; sites.len()];
    for v in rules::lint_source(path, src) {
        // A trailing allow (same line) binds tighter than a standalone
        // one on the line above, so stacked per-line allows each claim
        // their own site instead of the first allow claiming both.
        let same_line = sites
            .iter()
            .position(|s| s.rule == v.rule && s.line == v.line);
        match same_line.or_else(|| sites.iter().position(|s| s.covers(v.rule, v.line))) {
            Some(idx) => {
                used[idx] = true;
                site_allowed.push((v, sites[idx].clone()));
            }
            None => violations.push(v),
        }
    }
    for (s, u) in sites.iter().zip(&used) {
        if !u {
            violations.push(Violation {
                rule: "A2",
                path: path.to_string(),
                line: s.line,
                what: format!("lint:allow({})", s.rule),
                hint: site::STALE_HINT,
            });
        }
    }
    violations.sort_by(|a, b| (a.line, a.rule, &a.what).cmp(&(b.line, b.rule, &b.what)));
    (violations, site_allowed)
}

/// Lint every tracked source file under `root` against `allowlist`.
pub fn lint_workspace(root: &Path, allowlist: &[AllowEntry]) -> std::io::Result<LintRun> {
    let mut run = LintRun::default();
    let mut used = vec![false; allowlist.len()];

    let mut files = source_files(root)?;
    files.sort();
    let mut contents: Vec<(String, String)> = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&file)?;
        contents.push((rel, src));
    }
    for (rel, src) in &contents {
        run.files_scanned += 1;
        let (violations, site_allowed) = lint_source_with_sites(rel, src);
        run.site_allowed.extend(site_allowed);
        for v in violations {
            match allowlist.iter().position(|e| e.matches(&v)) {
                Some(idx) => {
                    used[idx] = true;
                    run.allowed.push((v, idx));
                }
                None => run.violations.push(v),
            }
        }
    }
    // L8 sees every file at once: it reconciles resolve sites in one
    // file against the registry constant in another. Site allows are
    // per-file, so only the allowlist layer applies here.
    for v in rules::lint_metric_registry(&contents) {
        match allowlist.iter().position(|e| e.matches(&v)) {
            Some(idx) => {
                used[idx] = true;
                run.allowed.push((v, idx));
            }
            None => run.violations.push(v),
        }
    }
    run.unused_entries = allowlist
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| e.clone())
        .collect();
    Ok(run)
}

/// Every `.rs` file the gate covers: `crates/*/src/**`, the workspace
/// `src/`, and `examples/`. Tests and benches are intentionally out of
/// scope (they may use wall-clocks and unwrap freely); the lint crate's
/// own fixtures are skipped so violating examples don't fail the gate.
fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in std::fs::read_dir(&crates)? {
            let dir = entry?.path().join("src");
            if dir.is_dir() {
                walk_rs(&dir, &mut out)?;
            }
        }
    }
    for top in ["src", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk_rs(&dir, &mut out)?;
        }
    }
    Ok(out)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render one violation the way compilers do: `path:line: [rule] ...`.
pub fn format_violation(v: &Violation) -> String {
    format!(
        "{}:{}: [{}] {} — {}",
        v.path, v.line, v.rule, v.what, v.hint
    )
}

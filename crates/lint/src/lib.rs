//! conncar-lint: the workspace determinism & invariant gate.
//!
//! Four deny-by-default rules (see [`rules`]) run over every `.rs` file
//! under `crates/*/src`, `src/`, and `examples/`; hits are suppressed
//! only by a documented entry in `lint.toml`. See DESIGN.md §9 for the
//! rationale behind each rule and the procedure for amending the
//! allowlist.

pub mod config;
pub mod lexer;
pub mod rules;

use config::AllowEntry;
use rules::Violation;
use std::path::{Path, PathBuf};

/// Outcome of a full workspace lint run.
#[derive(Debug, Default)]
pub struct LintRun {
    /// Unallowlisted violations: these fail the gate.
    pub violations: Vec<Violation>,
    /// Violations covered by an allowlist entry (reported informally).
    pub allowed: Vec<(Violation, usize)>,
    /// Allowlist entries that matched nothing (stale — reported so the
    /// residue file shrinks instead of rotting).
    pub unused_entries: Vec<AllowEntry>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Lint every tracked source file under `root` against `allowlist`.
pub fn lint_workspace(root: &Path, allowlist: &[AllowEntry]) -> std::io::Result<LintRun> {
    let mut run = LintRun::default();
    let mut used = vec![false; allowlist.len()];

    let mut files = source_files(root)?;
    files.sort();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&file)?;
        run.files_scanned += 1;
        for v in rules::lint_source(&rel, &src) {
            match allowlist.iter().position(|e| e.matches(&v)) {
                Some(idx) => {
                    used[idx] = true;
                    run.allowed.push((v, idx));
                }
                None => run.violations.push(v),
            }
        }
    }
    run.unused_entries = allowlist
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| e.clone())
        .collect();
    Ok(run)
}

/// Every `.rs` file the gate covers: `crates/*/src/**`, the workspace
/// `src/`, and `examples/`. Tests and benches are intentionally out of
/// scope (they may use wall-clocks and unwrap freely); the lint crate's
/// own fixtures are skipped so violating examples don't fail the gate.
fn source_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in std::fs::read_dir(&crates)? {
            let dir = entry?.path().join("src");
            if dir.is_dir() {
                walk_rs(&dir, &mut out)?;
            }
        }
    }
    for top in ["src", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk_rs(&dir, &mut out)?;
        }
    }
    Ok(out)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render one violation the way compilers do: `path:line: [rule] ...`.
pub fn format_violation(v: &Violation) -> String {
    format!(
        "{}:{}: [{}] {} — {}",
        v.path, v.line, v.rule, v.what, v.hint
    )
}

//! A minimal Rust lexer: just enough token structure for rules L1–L4.
//!
//! We deliberately do not build an AST. Every invariant the linter
//! enforces is visible at the token level (type names, method-call
//! spellings, `as <narrow-int>` sequences), and a token scanner keeps
//! the crate dependency-free — `syn` is not buildable in the offline
//! environments this gate must run in.
//!
//! The lexer understands the parts of Rust that would otherwise cause
//! false positives: line and nested block comments, string / raw-string
//! / byte-string / char literals (vs lifetimes), and numeric literals.
//! It also brace-matches `#[cfg(test)]` / `#[test]` items so rules can
//! skip test-only code.

/// One significant token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Whether the token sits inside a `#[cfg(test)]` or `#[test]`
    /// item body (rules skip these regions).
    pub in_test: bool,
}

/// Token categories. Literals and comments never reach the rule layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `as`, `unwrap`, ...).
    Ident(String),
    /// Numeric literal (value irrelevant to every rule).
    Number,
    /// Lifetime (`'a`) — distinct from char literals.
    Lifetime,
    /// Any other single significant character (`.`, `:`, `(`, ...).
    Punct(char),
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// One `//` line comment, kept aside for the site-allow scanner.
///
/// Only line comments are captured: the `lint:allow` marker grammar is
/// defined on `//` comments, and block comments stay invisible to the
/// rule layer as before.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// Comment text including the leading `//` (no trailing newline).
    pub text: String,
    /// 1-based line the comment sits on.
    pub line: u32,
}

/// Tokenize `src`, skipping comments and the *contents* of literals.
pub fn tokenize(src: &str) -> Vec<Token> {
    tokenize_full(src).0
}

/// Tokenize `src`, additionally returning every `//` line comment so
/// the site-allow layer can scan them without re-lexing literals.
pub fn tokenize_full(src: &str) -> (Vec<Token>, Vec<LineComment>) {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($range:expr) => {
            line += bytes[$range].iter().filter(|&&b| b == b'\n').count() as u32
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(LineComment {
                    text: String::from_utf8_lossy(&bytes[start..i]).into_owned(),
                    line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                let mut depth = 1u32;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                bump_lines!(start..i);
            }
            b'"' => {
                let start = i;
                i = skip_string(bytes, i);
                bump_lines!(start..i);
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                let start = i;
                i = skip_raw_or_byte_string(bytes, i);
                bump_lines!(start..i);
            }
            b'\'' => {
                // Lifetime vs char literal.
                let next = bytes.get(i + 1).copied().unwrap_or(0);
                let after = bytes.get(i + 2).copied().unwrap_or(0);
                if (next.is_ascii_alphabetic() || next == b'_') && after != b'\'' {
                    i += 1;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    toks.push(Token { kind: TokenKind::Lifetime, line, in_test: false });
                } else {
                    let start = i;
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    bump_lines!(start..i);
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = std::str::from_utf8(&bytes[start..i]).unwrap_or("").to_string();
                toks.push(Token { kind: TokenKind::Ident(text), line, in_test: false });
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // Stop a numeric literal before a range operator or
                    // method call on a literal (`1..10`, `1.max(2)`).
                    if bytes[i] == b'.'
                        && bytes
                            .get(i + 1)
                            .is_some_and(|&n| n == b'.' || n.is_ascii_alphabetic() || n == b'_')
                    {
                        break;
                    }
                    i += 1;
                }
                toks.push(Token { kind: TokenKind::Number, line, in_test: false });
            }
            c => {
                // Multi-byte UTF-8 only appears inside literals/comments
                // in valid Rust, but advance safely regardless.
                let width = if c < 0x80 { 1 } else { utf8_width(c) };
                if c < 0x80 {
                    toks.push(Token { kind: TokenKind::Punct(c as char), line, in_test: false });
                }
                i += width;
            }
        }
    }

    mark_test_regions(&mut toks);
    (toks, comments)
}

fn utf8_width(lead: u8) -> usize {
    if lead >= 0xF0 {
        4
    } else if lead >= 0xE0 {
        3
    } else {
        2
    }
}

/// Is `bytes[i..]` the start of a raw string / byte string /
/// raw byte string (`r"`, `r#"`, `b"`, `br"`, `rb` is not Rust)?
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) == Some(&b'r') {
            j += 1;
        }
    } else if bytes[j] == b'r' {
        j += 1;
    } else {
        return false;
    }
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"') && j > i
}

fn skip_raw_or_byte_string(bytes: &[u8], mut i: usize) -> usize {
    if bytes[i] == b'b' {
        i += 1;
    }
    let raw = bytes.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1; // opening quote
    if raw {
        // Scan for `"` followed by `hashes` `#`s.
        while i < bytes.len() {
            if bytes[i] == b'"' {
                let mut k = 0usize;
                while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                    k += 1;
                }
                if k == hashes {
                    return i + 1 + hashes;
                }
            }
            i += 1;
        }
        i
    } else {
        skip_string(bytes, i - 1)
    }
}

/// Skip a plain `"..."` string starting at the opening quote.
fn skip_string(bytes: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Mark tokens inside `#[cfg(test)]` / `#[test]` item bodies.
///
/// Strategy: whenever we see `#` `[` ... `]` whose bracket group
/// contains the ident `test` under a `cfg(...)` or is exactly `test`,
/// find the next `{` and mark through its matching `}`. This covers
/// `#[cfg(test)] mod tests { ... }` and `#[test] fn case() { ... }`,
/// which is how every test in this workspace is written.
fn mark_test_regions(toks: &mut [Token]) {
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Collect the attribute's tokens.
            let attr_start = i + 2;
            let mut depth = 1i32;
            let mut j = attr_start;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                }
                j += 1;
            }
            let attr = &toks[attr_start..j.saturating_sub(1)];
            if attr_is_test(attr) {
                // Find the opening brace of the annotated item. Skip
                // over any further attributes and the item header; stop
                // at `;` (no body ⇒ nothing to mark).
                let mut k = j;
                let mut brace = None;
                let mut paren_depth = 0i32;
                while k < toks.len() {
                    if toks[k].is_punct('(') {
                        paren_depth += 1;
                    } else if toks[k].is_punct(')') {
                        paren_depth -= 1;
                    } else if toks[k].is_punct('{') && paren_depth == 0 {
                        brace = Some(k);
                        break;
                    } else if toks[k].is_punct(';') && paren_depth == 0 {
                        break;
                    }
                    k += 1;
                }
                if let Some(open) = brace {
                    let mut bdepth = 0i32;
                    let mut m = open;
                    while m < toks.len() {
                        if toks[m].is_punct('{') {
                            bdepth += 1;
                        } else if toks[m].is_punct('}') {
                            bdepth -= 1;
                        }
                        toks[m].in_test = true;
                        if bdepth == 0 {
                            break;
                        }
                        m += 1;
                    }
                    // Also mark the header tokens between attr and `{`.
                    for t in &mut toks[i..open] {
                        t.in_test = true;
                    }
                    i = m + 1;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

/// Does an attribute token list denote test-only code?
/// Matches `test`, `cfg(test)`, and `cfg(any(test, ...))`, but not
/// `cfg(not(test))` (which gates *non*-test code).
fn attr_is_test(attr: &[Token]) -> bool {
    match attr {
        [t] => t.ident() == Some("test"),
        _ => {
            attr.first().and_then(Token::ident) == Some("cfg")
                && attr.iter().any(|t| t.ident() == Some("test"))
                && !attr.iter().any(|t| t.ident() == Some("not"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn raw_strings_hide_their_contents_from_the_token_stream() {
        // A `HashMap` spelled inside a raw string must not become an
        // ident — and the hash fence must not eat following tokens.
        let src = r##"let s = r#"HashMap::new() "quoted" inside"#; after();"##;
        let names = idents(src);
        assert!(!names.contains(&"HashMap".to_string()), "{names:?}");
        assert!(names.contains(&"after".to_string()), "{names:?}");
    }

    #[test]
    fn raw_string_line_accounting_survives_embedded_newlines() {
        let src = "let s = r#\"line one\nline two\n\"#;\nInstant::now();\n";
        let toks = tokenize(src);
        let instant = toks.iter().find(|t| t.ident() == Some("Instant")).unwrap();
        assert_eq!(instant.line, 4);
    }

    #[test]
    fn byte_strings_and_raw_byte_strings_are_literals_not_tokens() {
        let names = idents(r##"let a = b"unwrap()"; let c = br#"panic!"#; tail();"##);
        assert!(!names.contains(&"unwrap".to_string()), "{names:?}");
        assert!(!names.contains(&"panic".to_string()), "{names:?}");
        assert!(names.contains(&"tail".to_string()), "{names:?}");
    }

    #[test]
    fn an_ident_prefixed_b_or_r_is_not_a_string_opener() {
        // `b` / `r` as ordinary idents followed by a string must leave
        // the variable names intact.
        let names = idents("let b = 1; let r = b; take(r, \"x\");");
        assert!(names.contains(&"b".to_string()));
        assert!(names.contains(&"take".to_string()));
    }

    #[test]
    fn nested_block_comments_skip_to_the_matching_close() {
        // Rust block comments nest: the inner `/* */` must not
        // terminate the outer comment early.
        let src = "/* outer /* inner unwrap() */ still comment */ visible();";
        let names = idents(src);
        assert_eq!(names, vec!["visible".to_string()]);
    }

    #[test]
    fn block_comment_newlines_count_toward_line_numbers() {
        let src = "/* one\ntwo\nthree */\nmarker();\n";
        let toks = tokenize(src);
        assert_eq!(toks[0].ident(), Some("marker"));
        assert_eq!(toks[0].line, 4);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
        // And a real char literal containing a quote-worthy byte stays
        // a literal: no stray tokens.
        let names = idents("let c = 'x'; let esc = '\\''; done();");
        assert_eq!(names, vec!["let", "c", "let", "esc", "done"]);
    }

    #[test]
    fn line_comments_are_captured_with_their_lines() {
        let (toks, comments) = tokenize_full("code();\n// lint:allow(L1): why\nmore();\n");
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].line, 2);
        assert!(comments[0].text.starts_with("// lint:allow"));
        assert_eq!(toks.iter().filter(|t| t.ident().is_some()).count(), 2);
    }

    #[test]
    fn cfg_test_regions_mark_nested_braces_through_the_close() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn inner() { if x { y(); } }\n}\nfn live2() {}\n";
        let toks = tokenize(src);
        let live = toks.iter().find(|t| t.ident() == Some("live")).unwrap();
        let inner = toks.iter().find(|t| t.ident() == Some("inner")).unwrap();
        let live2 = toks.iter().find(|t| t.ident() == Some("live2")).unwrap();
        assert!(!live.in_test);
        assert!(inner.in_test);
        assert!(!live2.in_test);
    }
}

//! Property tests for the spatial substrate: routing laws and
//! cell-selection invariants that the trace generator depends on.

use conncar_geo::{NodeId, Point, Region, RegionConfig};
use conncar_types::ModemCapability;
use proptest::prelude::*;
use std::sync::OnceLock;

fn region() -> &'static Region {
    static REGION: OnceLock<Region> = OnceLock::new();
    REGION.get_or_init(|| Region::generate(&RegionConfig::small(), 42))
}

fn node(r: &Region, raw: u32) -> NodeId {
    let n = r.roads().node_count() as u32;
    NodeId(raw % n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn routes_connect_and_interpolate(a_raw in any::<u32>(), b_raw in any::<u32>()) {
        let r = region();
        let a = node(r, a_raw);
        let b = node(r, b_raw);
        let route = r.roads().route(a, b).expect("grid is connected");
        let total = route.total_time_secs();
        // Endpoints are exact.
        prop_assert_eq!(route.position_at(0.0), r.roads().position(a));
        prop_assert_eq!(route.position_at(total as f64 + 1e9), r.roads().position(b));
        // Every sampled position stays inside the region bounds.
        let w = r.config().width_m;
        let h = r.config().height_m;
        for i in 0..=10 {
            let p = route.position_at(total as f64 * i as f64 / 10.0);
            prop_assert!((-1e-6..=w + 1e-6).contains(&p.x));
            prop_assert!((-1e-6..=h + 1e-6).contains(&p.y));
        }
        // Route length is at least the straight-line distance.
        let crow = r.roads().position(a).distance_m(r.roads().position(b));
        prop_assert!(route.total_length_m() + 1e-6 >= crow);
    }

    #[test]
    fn route_time_is_symmetric(a_raw in any::<u32>(), b_raw in any::<u32>()) {
        // The grid's edges are undirected with symmetric speeds.
        let r = region();
        let a = node(r, a_raw);
        let b = node(r, b_raw);
        let ab = r.roads().route(a, b).expect("connected").total_time_secs();
        let ba = r.roads().route(b, a).expect("connected").total_time_secs();
        prop_assert!(ab.abs_diff(ba) <= 1);
    }

    #[test]
    fn nearest_node_is_idempotent(x in 0.0f64..24_000.0, y in 0.0f64..24_000.0) {
        let r = region();
        let n = r.roads().nearest_node(Point::new(x, y));
        let p = r.roads().position(n);
        prop_assert_eq!(r.roads().nearest_node(p), n);
    }

    #[test]
    fn selection_is_pure_and_capability_respecting(
        x in 0.0f64..24_000.0,
        y in 0.0f64..24_000.0,
    ) {
        let r = region();
        let p = Point::new(x, y);
        let a = r.serving_cell(p, ModemCapability::STANDARD, None);
        let b = r.serving_cell(p, ModemCapability::STANDARD, None);
        prop_assert_eq!(a.map(|s| s.cell), b.map(|s| s.cell));
        if let Some(s) = a {
            prop_assert!(ModemCapability::STANDARD.supports(s.cell.carrier));
            // The chosen cell really exists in the deployment.
            prop_assert!(r.station_of(s.cell).is_some());
        }
        // A 3G-only modem never lands on LTE.
        if let Some(s) = r.serving_cell(p, ModemCapability::UMTS_ONLY, None) {
            prop_assert_eq!(s.cell.carrier, conncar_types::Carrier::C2);
        }
    }

    #[test]
    fn hysteresis_never_picks_a_worse_scoring_cell_without_reason(
        x in 2_000.0f64..22_000.0,
        y in 2_000.0f64..22_000.0,
    ) {
        let r = region();
        let p = Point::new(x, y);
        let Some(first) = r.serving_cell(p, ModemCapability::STANDARD, None) else {
            return Ok(());
        };
        // Re-selecting with the current cell as context returns the
        // same cell (no spurious handover when stationary).
        let second = r
            .serving_cell(p, ModemCapability::STANDARD, Some(first.cell))
            .expect("still covered");
        prop_assert_eq!(second.cell, first.cell);
    }
}

#[test]
fn sampled_homes_are_valid_nodes() {
    let r = region();
    for seed in 0..50 {
        let h = r.random_home(seed);
        assert!(h.index() < r.roads().node_count());
    }
}

//! Planar points and distances.
//!
//! The region is small enough (tens of kilometres) that a flat Cartesian
//! plane in metres is exact for our purposes; no geodesy needed.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A position in the region, metres from the south-west corner.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Eastings in metres.
    pub x: f64,
    /// Northings in metres.
    pub y: f64,
}

impl Point {
    /// Construct from metre coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Construct from kilometre coordinates.
    #[inline]
    pub fn from_km(x_km: f64, y_km: f64) -> Point {
        Point {
            x: x_km * 1_000.0,
            y: y_km * 1_000.0,
        }
    }

    /// Euclidean distance to `other`, metres.
    #[inline]
    pub fn distance_m(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared distance, for comparisons without the square root.
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Manhattan (L1) distance, metres — matches travel distance on a
    /// grid road network.
    #[inline]
    pub fn manhattan_m(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Azimuth from this point to `other` in degrees, clockwise from
    /// north, `[0, 360)`. Matches antenna-bearing conventions.
    pub fn azimuth_deg_to(self, other: Point) -> f64 {
        let dx = other.x - self.x;
        let dy = other.y - self.y;
        if dx == 0.0 && dy == 0.0 {
            return 0.0;
        }
        let deg = dx.atan2(dy).to_degrees();
        if deg < 0.0 {
            deg + 360.0
        } else {
            deg
        }
    }

    /// Linear interpolation: the point a fraction `t ∈ [0,1]` of the way
    /// to `other`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.0} m, {:.0} m)", self.x, self.y)
    }
}

/// Smallest absolute angular difference between two bearings, degrees,
/// in `[0, 180]`.
#[inline]
pub fn angle_diff_deg(a: f64, b: f64) -> f64 {
    let d = (a - b).rem_euclid(360.0);
    if d > 180.0 {
        360.0 - d
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance_m(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.manhattan_m(b), 7.0);
        assert_eq!(Point::from_km(1.0, 2.0), Point::new(1_000.0, 2_000.0));
    }

    #[test]
    fn azimuths() {
        let o = Point::new(0.0, 0.0);
        assert_eq!(o.azimuth_deg_to(Point::new(0.0, 1.0)), 0.0); // north
        assert_eq!(o.azimuth_deg_to(Point::new(1.0, 0.0)), 90.0); // east
        assert_eq!(o.azimuth_deg_to(Point::new(0.0, -1.0)), 180.0); // south
        assert_eq!(o.azimuth_deg_to(Point::new(-1.0, 0.0)), 270.0); // west
        assert_eq!(o.azimuth_deg_to(o), 0.0); // degenerate
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, 10.0));
    }

    #[test]
    fn angle_diff_wraps() {
        assert_eq!(angle_diff_deg(10.0, 350.0), 20.0);
        assert_eq!(angle_diff_deg(350.0, 10.0), 20.0);
        assert_eq!(angle_diff_deg(0.0, 180.0), 180.0);
        assert_eq!(angle_diff_deg(90.0, 90.0), 0.0);
    }
}

//! Base-station deployment.
//!
//! Stations are laid out on jittered lattices whose density follows the
//! zone map (§3 of the paper: "hundreds of thousands of cells", densest
//! where people are), with extra sites strung along highway corridors the
//! way US operators actually deploy. Each station radiates 3 sectors;
//! each sector carries a zone-dependent subset of the five frequency
//! carriers, so a station hosts anywhere from 3 to 12+ cells — matching
//! the paper's "typically multiple cells per base station, anywhere from
//! 3 to 12, sometimes even more".

use crate::point::Point;
use crate::road::RoadNetwork;
use crate::zone::{Zone, ZoneMap};
use conncar_types::{BaseStationId, Carrier, CellId, ALL_CARRIERS};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Per-zone probability that a station deploys each carrier.
///
/// Defaults are calibrated so the fleet-wide carrier mix lands near
/// Table 3: C1 is the ubiquitous coverage layer, C3 the mid-band
/// workhorse, C4 a partial overlay, C2 the fading 3G layer, and C5 a
/// brand-new band present only downtown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CarrierDeployment {
    /// Deployment probability of each carrier (indexed by
    /// [`Carrier::index`]) in urban stations.
    pub urban: [f64; 5],
    /// Same for suburban stations.
    pub suburban: [f64; 5],
    /// Same for rural stations.
    pub rural: [f64; 5],
}

impl Default for CarrierDeployment {
    fn default() -> Self {
        CarrierDeployment {
            //        C1    C2    C3    C4    C5
            urban: [1.00, 0.60, 1.00, 0.90, 0.08],
            suburban: [0.97, 0.70, 0.80, 0.60, 0.00],
            rural: [0.90, 0.80, 0.30, 0.08, 0.00],
        }
    }
}

impl CarrierDeployment {
    /// The probability vector for a zone.
    pub fn for_zone(&self, z: Zone) -> &[f64; 5] {
        match z {
            Zone::Urban => &self.urban,
            Zone::Suburban => &self.suburban,
            Zone::Rural => &self.rural,
        }
    }
}

/// Deployment generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// Sectors per station (the common macro configuration is 3).
    pub sectors_per_station: u8,
    /// Lattice jitter as a fraction of local site spacing.
    pub jitter_frac: f64,
    /// Spacing of extra highway-corridor sites, metres.
    pub highway_site_spacing_m: f64,
    /// Carrier deployment probabilities.
    pub carriers: CarrierDeployment,
    /// First base-station id to allocate (lets multiple regions coexist
    /// with globally unique ids).
    pub station_id_base: u32,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            sectors_per_station: 3,
            jitter_frac: 0.25,
            highway_site_spacing_m: 3_000.0,
            carriers: CarrierDeployment::default(),
            station_id_base: 0,
        }
    }
}

/// A deployed base station.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StationInfo {
    /// Identifier, unique across the whole study.
    pub id: BaseStationId,
    /// Site position.
    pub position: Point,
    /// Zone the site sits in (drives propagation and background load).
    pub zone: Zone,
    /// Whether the site was placed to cover a highway corridor.
    pub highway_site: bool,
    /// Azimuth of sector 0 in degrees; sector `k` points at
    /// `azimuth0 + k * 360/sectors`.
    pub azimuth0_deg: f64,
    /// Number of sectors.
    pub sectors: u8,
    /// Carriers deployed at this site (same set on every sector).
    pub carriers: Vec<Carrier>,
}

impl StationInfo {
    /// Azimuth of sector `k`, degrees clockwise from north.
    pub fn sector_azimuth_deg(&self, sector: u8) -> f64 {
        (self.azimuth0_deg + sector as f64 * 360.0 / self.sectors as f64).rem_euclid(360.0)
    }

    /// Iterate over every cell of this station.
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.sectors).flat_map(move |s| {
            self.carriers
                .iter()
                .map(move |&c| CellId::new(self.id, s, c))
        })
    }
}

/// The full station deployment of a region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Deployment {
    stations: Vec<StationInfo>,
}

/// One cell plus the station data needed to evaluate it radio-wise.
#[derive(Debug, Clone, Copy)]
pub struct CellInfo<'a> {
    /// The cell identifier.
    pub cell: CellId,
    /// Its station record.
    pub station: &'a StationInfo,
}

impl Deployment {
    /// Generate the deployment for a region.
    pub fn generate(
        cfg: &DeploymentConfig,
        zones: &ZoneMap,
        roads: &RoadNetwork,
        width_m: f64,
        height_m: f64,
        seed: u64,
    ) -> Deployment {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut positions: Vec<(Point, bool)> = Vec::new();

        // Three overlapping lattices; a candidate is kept when the local
        // zone matches the lattice's density class, so each zone gets its
        // own spacing without seams.
        for z in [Zone::Rural, Zone::Suburban, Zone::Urban] {
            let spacing = z.site_spacing_m();
            let jitter = spacing * cfg.jitter_frac;
            let mut y = spacing / 2.0;
            let mut row = 0u32;
            while y < height_m {
                // Offset alternate rows for a roughly hexagonal packing.
                let x0 = if row.is_multiple_of(2) {
                    spacing / 2.0
                } else {
                    spacing
                };
                let mut x = x0;
                while x < width_m {
                    let jx = rng.gen_range(-jitter..=jitter);
                    let jy = rng.gen_range(-jitter..=jitter);
                    let p = Point::new(
                        (x + jx).clamp(0.0, width_m),
                        (y + jy).clamp(0.0, height_m),
                    );
                    if zones.zone_of(p) == z {
                        positions.push((p, false));
                    }
                    x += spacing;
                }
                y += spacing * 0.9; // slight vertical compression ≈ hex
                row += 1;
            }
        }

        // Highway corridor sites: walk highway nodes and add a site
        // wherever existing coverage is sparser than the corridor spacing.
        let (rows, cols) = roads.dims();
        for r in 0..rows {
            for c in 0..cols {
                let n = roads.node_at(r, c).expect("in range");
                if !roads.is_highway_node(n) {
                    continue;
                }
                let p = roads.position(n);
                let near = positions
                    .iter()
                    .any(|(q, _)| q.distance_m(p) < cfg.highway_site_spacing_m);
                if !near {
                    let jitter = 300.0;
                    let q = Point::new(
                        (p.x + rng.gen_range(-jitter..=jitter)).clamp(0.0, width_m),
                        (p.y + rng.gen_range(-jitter..=jitter)).clamp(0.0, height_m),
                    );
                    positions.push((q, true));
                }
            }
        }

        // Materialize stations.
        let mut stations = Vec::with_capacity(positions.len());
        for (i, (p, highway_site)) in positions.into_iter().enumerate() {
            let zone = zones.zone_of(p);
            let probs = cfg.carriers.for_zone(zone);
            let mut carriers: Vec<Carrier> = ALL_CARRIERS
                .into_iter()
                .filter(|c| rng.gen_bool(probs[c.index()].clamp(0.0, 1.0)))
                .collect();
            if carriers.is_empty() {
                // Every real site has at least the coverage layer.
                carriers.push(Carrier::C1);
            }
            stations.push(StationInfo {
                id: BaseStationId(cfg.station_id_base + i as u32),
                position: p,
                zone,
                highway_site,
                azimuth0_deg: rng.gen_range(0.0..120.0),
                sectors: cfg.sectors_per_station,
                carriers,
            });
        }
        Deployment { stations }
    }

    /// All stations.
    pub fn stations(&self) -> &[StationInfo] {
        &self.stations
    }

    /// Look up a station by id; `None` for ids outside this region.
    pub fn station(&self, id: BaseStationId) -> Option<&StationInfo> {
        let base = self.stations.first()?.id.0;
        let idx = id.0.checked_sub(base)? as usize;
        self.stations.get(idx).filter(|s| s.id == id)
    }

    /// Total number of cells across all stations.
    pub fn cell_count(&self) -> usize {
        self.stations
            .iter()
            .map(|s| s.sectors as usize * s.carriers.len())
            .sum()
    }

    /// Iterate over every cell in the deployment.
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        self.stations.iter().flat_map(|s| s.cells())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::RoadNetworkConfig;

    fn make() -> (Deployment, ZoneMap) {
        let zones = ZoneMap {
            center: Point::from_km(30.0, 30.0),
            urban_radius_m: 6_000.0,
            suburban_radius_m: 18_000.0,
        };
        let rcfg = RoadNetworkConfig::default();
        let roads = RoadNetwork::generate(&rcfg, &zones);
        let d = Deployment::generate(
            &DeploymentConfig::default(),
            &zones,
            &roads,
            60_000.0,
            60_000.0,
            7,
        );
        (d, zones)
    }

    #[test]
    fn deployment_is_deterministic() {
        let (a, _) = make();
        let (b, _) = make();
        assert_eq!(a.stations().len(), b.stations().len());
        for (x, y) in a.stations().iter().zip(b.stations()) {
            assert_eq!(x.position, y.position);
            assert_eq!(x.carriers, y.carriers);
        }
    }

    #[test]
    fn station_count_plausible() {
        let (d, _) = make();
        let n = d.stations().len();
        // 60×60 km mixed-density metro: order hundreds of sites.
        assert!(n > 100, "only {n} stations");
        assert!(n < 2_000, "{n} stations is implausible");
    }

    #[test]
    fn urban_sites_denser_than_rural() {
        let (d, zones) = make();
        let urban_area = std::f64::consts::PI * 6.0_f64.powi(2);
        let total_area = 60.0 * 60.0;
        let suburban_area = std::f64::consts::PI * 18.0_f64.powi(2) - urban_area;
        let rural_area = total_area - urban_area - suburban_area;
        let mut per_zone = [0usize; 3];
        for s in d.stations() {
            per_zone[match zones.zone_of(s.position) {
                Zone::Urban => 0,
                Zone::Suburban => 1,
                Zone::Rural => 2,
            }] += 1;
        }
        let urban_density = per_zone[0] as f64 / urban_area;
        let rural_density = per_zone[2] as f64 / rural_area;
        assert!(
            urban_density > 3.0 * rural_density,
            "urban {urban_density:.2}/km² vs rural {rural_density:.2}/km²"
        );
    }

    #[test]
    fn every_station_has_coverage_layer_or_more() {
        let (d, _) = make();
        for s in d.stations() {
            assert!(!s.carriers.is_empty());
            assert!(s.sectors >= 1);
        }
        // C1 is the coverage layer: deployed at the vast majority of
        // sites (not literally all — some rural legacy sites lack it).
        let with_c1 = d
            .stations()
            .iter()
            .filter(|s| s.carriers.contains(&Carrier::C1))
            .count();
        assert!(with_c1 * 10 >= d.stations().len() * 8, "{with_c1} C1 sites");
    }

    #[test]
    fn c5_only_downtown() {
        let (d, zones) = make();
        for s in d.stations() {
            if s.carriers.contains(&Carrier::C5) {
                assert_eq!(zones.zone_of(s.position), Zone::Urban);
            }
        }
    }

    #[test]
    fn sector_azimuths_spread() {
        let (d, _) = make();
        let s = &d.stations()[0];
        let a0 = s.sector_azimuth_deg(0);
        let a1 = s.sector_azimuth_deg(1);
        let a2 = s.sector_azimuth_deg(2);
        assert!((crate::point::angle_diff_deg(a0, a1) - 120.0).abs() < 1e-9);
        assert!((crate::point::angle_diff_deg(a1, a2) - 120.0).abs() < 1e-9);
    }

    #[test]
    fn cell_enumeration_matches_count() {
        let (d, _) = make();
        assert_eq!(d.cells().count(), d.cell_count());
        // 3 sectors × 1..=5 carriers each.
        for s in d.stations() {
            let n = s.cells().count();
            assert_eq!(n, 3 * s.carriers.len());
            assert!((3..=15).contains(&n));
        }
    }

    #[test]
    fn station_lookup() {
        let (d, _) = make();
        let s = &d.stations()[5];
        assert_eq!(d.station(s.id).unwrap().id, s.id);
        assert!(d.station(BaseStationId(999_999)).is_none());
    }

    #[test]
    fn station_id_base_offsets_ids() {
        let zones = ZoneMap {
            center: Point::from_km(5.0, 5.0),
            urban_radius_m: 2_000.0,
            suburban_radius_m: 4_000.0,
        };
        let rcfg = RoadNetworkConfig {
            width_m: 10_000.0,
            height_m: 10_000.0,
            ..Default::default()
        };
        let roads = RoadNetwork::generate(&rcfg, &zones);
        let cfg = DeploymentConfig {
            station_id_base: 1_000,
            ..Default::default()
        };
        let d = Deployment::generate(&cfg, &zones, &roads, 10_000.0, 10_000.0, 7);
        assert!(d.stations().iter().all(|s| s.id.0 >= 1_000));
        let s = &d.stations()[2];
        assert_eq!(d.station(s.id).unwrap().position, s.position);
    }
}

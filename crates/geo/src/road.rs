//! Road network and routing.
//!
//! The region's roads are a surface-street grid (nodes every couple of
//! kilometres, travel at the local zone's street speed) overlaid with
//! highway corridors (straight rows/columns of the grid where travel is
//! much faster). Commutes route over this graph by travel time with
//! Dijkstra, which naturally prefers highways for long trips — exactly
//! the mobility that produces the inter-base-station handover chains of
//! §4.5 and the "cars concentrated on highway cells" effect of §4.4.

use crate::point::Point;
use crate::zone::ZoneMap;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Index of a road-grid node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Configuration of the road grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadNetworkConfig {
    /// Region width, metres.
    pub width_m: f64,
    /// Region height, metres.
    pub height_m: f64,
    /// Grid spacing between adjacent road nodes, metres.
    pub grid_spacing_m: f64,
    /// Grid row indices (south→north) that carry an east–west highway.
    pub highway_rows: Vec<u32>,
    /// Grid column indices (west→east) that carry a north–south highway.
    pub highway_cols: Vec<u32>,
    /// Highway speed, km/h.
    pub highway_speed_kmh: f64,
}

impl Default for RoadNetworkConfig {
    fn default() -> Self {
        RoadNetworkConfig {
            width_m: 60_000.0,
            height_m: 60_000.0,
            grid_spacing_m: 2_000.0,
            // Two crossing highways through the middle plus a beltway-ish
            // pair offset from the core.
            highway_rows: vec![15, 22],
            highway_cols: vec![15, 8],
            highway_speed_kmh: 110.0,
        }
    }
}

/// One directed edge of the road graph.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Edge {
    to: NodeId,
    /// Traversal time, seconds.
    time_secs: f64,
    /// Length, metres.
    length_m: f64,
    /// Whether this edge is a highway segment.
    highway: bool,
}

/// The road graph: grid nodes, directed edges, travel-time routing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadNetwork {
    cols: u32,
    rows: u32,
    spacing_m: f64,
    nodes: Vec<Point>,
    /// Adjacency list, indexed by node.
    edges: Vec<Vec<Edge>>,
    /// Per-node highway membership (used by station layout to densify
    /// coverage along corridors).
    on_highway: Vec<bool>,
}

impl RoadNetwork {
    /// Build the grid network for a region.
    pub fn generate(cfg: &RoadNetworkConfig, zones: &ZoneMap) -> RoadNetwork {
        let cols = (cfg.width_m / cfg.grid_spacing_m).floor() as u32 + 1;
        let rows = (cfg.height_m / cfg.grid_spacing_m).floor() as u32 + 1;
        let mut nodes = Vec::with_capacity((cols * rows) as usize);
        for r in 0..rows {
            for c in 0..cols {
                nodes.push(Point::new(
                    c as f64 * cfg.grid_spacing_m,
                    r as f64 * cfg.grid_spacing_m,
                ));
            }
        }
        let idx = |r: u32, c: u32| NodeId(r * cols + c);
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        let mut on_highway = vec![false; nodes.len()];
        for r in 0..rows {
            for c in 0..cols {
                let here = idx(r, c);
                if cfg.highway_rows.contains(&r) || cfg.highway_cols.contains(&c) {
                    on_highway[here.index()] = true;
                }
                let mut connect = |to_r: u32, to_c: u32, horizontal: bool| {
                    let to = idx(to_r, to_c);
                    let a = nodes[here.index()];
                    let b = nodes[to.index()];
                    let len = a.distance_m(b);
                    // A segment is highway when it lies *along* a highway
                    // row/column, not merely crossing one.
                    let highway = if horizontal {
                        cfg.highway_rows.contains(&r)
                    } else {
                        cfg.highway_cols.contains(&c)
                    };
                    let speed_kmh = if highway {
                        cfg.highway_speed_kmh
                    } else {
                        // Street speed of the slower endpoint's zone.
                        zones
                            .zone_of(a)
                            .street_speed_kmh()
                            .min(zones.zone_of(b).street_speed_kmh())
                    };
                    let time = len / (speed_kmh / 3.6);
                    edges[here.index()].push(Edge {
                        to,
                        time_secs: time,
                        length_m: len,
                        highway,
                    });
                    edges[to.index()].push(Edge {
                        to: here,
                        time_secs: time,
                        length_m: len,
                        highway,
                    });
                };
                if c + 1 < cols {
                    connect(r, c + 1, true);
                }
                if r + 1 < rows {
                    connect(r + 1, c, false);
                }
            }
        }
        RoadNetwork {
            cols,
            rows,
            spacing_m: cfg.grid_spacing_m,
            nodes,
            edges,
            on_highway,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Position of a node.
    pub fn position(&self, n: NodeId) -> Point {
        self.nodes[n.index()]
    }

    /// Whether a node sits on a highway corridor.
    pub fn is_highway_node(&self, n: NodeId) -> bool {
        self.on_highway[n.index()]
    }

    /// The grid node nearest to an arbitrary point.
    pub fn nearest_node(&self, p: Point) -> NodeId {
        let c = (p.x / self.spacing_m).round().clamp(0.0, (self.cols - 1) as f64) as u32;
        let r = (p.y / self.spacing_m).round().clamp(0.0, (self.rows - 1) as f64) as u32;
        NodeId(r * self.cols + c)
    }

    /// Node at grid coordinates (row, col), if in range.
    pub fn node_at(&self, row: u32, col: u32) -> Option<NodeId> {
        (row < self.rows && col < self.cols).then(|| NodeId(row * self.cols + col))
    }

    /// Grid dimensions `(rows, cols)`.
    pub fn dims(&self) -> (u32, u32) {
        (self.rows, self.cols)
    }

    /// Fastest route between two nodes (Dijkstra on travel time).
    ///
    /// Returns `None` only if the graph were disconnected, which the grid
    /// construction precludes; still surfaced as an `Option` so callers
    /// handle custom networks gracefully.
    pub fn route(&self, from: NodeId, to: NodeId) -> Option<Route> {
        if from == to {
            return Some(Route {
                waypoints: vec![RouteLeg {
                    point: self.position(from),
                    cumulative_secs: 0.0,
                    cumulative_m: 0.0,
                    highway: false,
                }],
            });
        }
        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        // BinaryHeap over ordered-float-by-bits: times are finite and
        // non-negative, so total order by bit pattern is safe.
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        dist[from.index()] = 0.0;
        heap.push(Reverse((0u64, from.0)));
        while let Some(Reverse((dbits, u))) = heap.pop() {
            let d = f64::from_bits(dbits);
            if d > dist[u as usize] {
                continue;
            }
            if u == to.0 {
                break;
            }
            for e in &self.edges[u as usize] {
                let nd = d + e.time_secs;
                if nd < dist[e.to.index()] {
                    dist[e.to.index()] = nd;
                    prev[e.to.index()] = Some(NodeId(u));
                    heap.push(Reverse((nd.to_bits(), e.to.0)));
                }
            }
        }
        if dist[to.index()].is_infinite() {
            return None;
        }
        // Reconstruct node chain.
        let mut chain = vec![to];
        let mut cur = to;
        while let Some(p) = prev[cur.index()] {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        debug_assert_eq!(chain[0], from);
        // Convert to waypoints with cumulative time/distance.
        let mut waypoints = Vec::with_capacity(chain.len());
        let mut t = 0.0;
        let mut m = 0.0;
        waypoints.push(RouteLeg {
            point: self.position(from),
            cumulative_secs: 0.0,
            cumulative_m: 0.0,
            highway: false,
        });
        for w in chain.windows(2) {
            let (a, b) = (w[0], w[1]);
            let e = self.edges[a.index()]
                .iter()
                .find(|e| e.to == b)
                .expect("edge on reconstructed path");
            t += e.time_secs;
            m += e.length_m;
            waypoints.push(RouteLeg {
                point: self.position(b),
                cumulative_secs: t,
                cumulative_m: m,
                highway: e.highway,
            });
        }
        Some(Route { waypoints })
    }
}

/// One waypoint of a [`Route`] with cumulative travel time/distance.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RouteLeg {
    /// Waypoint position.
    pub point: Point,
    /// Seconds of travel from the route start to this waypoint.
    pub cumulative_secs: f64,
    /// Metres of travel from the route start to this waypoint.
    pub cumulative_m: f64,
    /// Whether the segment *arriving* at this waypoint is highway.
    pub highway: bool,
}

/// A fastest-path route: waypoints with cumulative timing, supporting
/// position interpolation at any elapsed time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Route {
    waypoints: Vec<RouteLeg>,
}

impl Route {
    /// Total travel time, whole seconds (rounded up).
    pub fn total_time_secs(&self) -> u64 {
        self.waypoints
            .last()
            .map(|w| w.cumulative_secs.ceil() as u64)
            .unwrap_or(0)
    }

    /// Total length in metres.
    pub fn total_length_m(&self) -> f64 {
        self.waypoints.last().map(|w| w.cumulative_m).unwrap_or(0.0)
    }

    /// The waypoints.
    pub fn legs(&self) -> &[RouteLeg] {
        &self.waypoints
    }

    /// Position after `elapsed` seconds of driving; clamps to the
    /// endpoints outside `[0, total]`.
    pub fn position_at(&self, elapsed_secs: f64) -> Point {
        let ws = &self.waypoints;
        if ws.is_empty() {
            return Point::default();
        }
        if elapsed_secs <= 0.0 {
            return ws[0].point;
        }
        let last = ws[ws.len() - 1];
        if elapsed_secs >= last.cumulative_secs {
            return last.point;
        }
        // Binary search for the segment containing `elapsed`.
        let i = ws.partition_point(|w| w.cumulative_secs <= elapsed_secs);
        let a = ws[i - 1];
        let b = ws[i];
        let span = b.cumulative_secs - a.cumulative_secs;
        let t = if span > 0.0 {
            (elapsed_secs - a.cumulative_secs) / span
        } else {
            0.0
        };
        a.point.lerp(b.point, t)
    }

    /// Whether the car is on a highway segment at `elapsed` seconds.
    pub fn on_highway_at(&self, elapsed_secs: f64) -> bool {
        let ws = &self.waypoints;
        if ws.len() < 2 || elapsed_secs <= 0.0 {
            return false;
        }
        let i = ws
            .partition_point(|w| w.cumulative_secs <= elapsed_secs)
            .min(ws.len() - 1);
        ws[i].highway
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_net() -> RoadNetwork {
        let cfg = RoadNetworkConfig {
            width_m: 10_000.0,
            height_m: 10_000.0,
            grid_spacing_m: 1_000.0,
            highway_rows: vec![5],
            highway_cols: vec![],
            highway_speed_kmh: 110.0,
        };
        let zones = ZoneMap {
            center: Point::from_km(5.0, 5.0),
            urban_radius_m: 2_000.0,
            suburban_radius_m: 4_000.0,
        };
        RoadNetwork::generate(&cfg, &zones)
    }

    #[test]
    fn grid_shape() {
        let net = small_net();
        assert_eq!(net.dims(), (11, 11));
        assert_eq!(net.node_count(), 121);
    }

    #[test]
    fn nearest_node_snaps_and_clamps() {
        let net = small_net();
        let n = net.nearest_node(Point::new(2_400.0, 3_600.0));
        assert_eq!(net.position(n), Point::new(2_000.0, 4_000.0));
        // Outside the grid clamps to the border.
        let n = net.nearest_node(Point::new(-5_000.0, 50_000.0));
        assert_eq!(net.position(n), Point::new(0.0, 10_000.0));
    }

    #[test]
    fn route_straight_line() {
        let net = small_net();
        let a = net.node_at(0, 0).unwrap();
        let b = net.node_at(0, 3).unwrap();
        let r = net.route(a, b).unwrap();
        assert_eq!(r.total_length_m(), 3_000.0);
        assert_eq!(r.legs().len(), 4);
        // Row 0 is rural in this map (far from center): 75 km/h.
        let expected = 3_000.0 / (75.0 / 3.6);
        assert!((r.total_time_secs() as f64 - expected).abs() <= 1.0);
    }

    #[test]
    fn route_prefers_highway_for_long_trips() {
        let net = small_net();
        // West edge to east edge at the highway row's latitude ±1:
        // the fast path should use the row-5 highway.
        let a = net.node_at(4, 0).unwrap();
        let b = net.node_at(4, 10).unwrap();
        let r = net.route(a, b).unwrap();
        assert!(
            r.legs().iter().any(|l| l.highway),
            "long east-west trip should take the highway"
        );
    }

    #[test]
    fn route_same_node() {
        let net = small_net();
        let a = net.node_at(2, 2).unwrap();
        let r = net.route(a, a).unwrap();
        assert_eq!(r.total_time_secs(), 0);
        assert_eq!(r.position_at(100.0), net.position(a));
    }

    #[test]
    fn position_interpolates_monotonically() {
        let net = small_net();
        let a = net.node_at(0, 0).unwrap();
        let b = net.node_at(3, 3).unwrap();
        let r = net.route(a, b).unwrap();
        let total = r.total_time_secs() as f64;
        let mut last = r.position_at(0.0);
        let mut moved = 0.0;
        let mut t = 0.0;
        while t <= total {
            let p = r.position_at(t);
            moved += last.distance_m(p);
            last = p;
            t += 10.0;
        }
        moved += last.distance_m(r.position_at(total));
        // Chords sampled every 10 s can cut corners, so the measured
        // length is a lower bound on the route length, and close to it.
        assert!(moved <= r.total_length_m() + 1e-6);
        assert!(moved >= 0.85 * r.total_length_m(), "moved {moved}");
        // Clamping beyond the end.
        assert_eq!(r.position_at(total + 999.0), net.position(b));
    }

    #[test]
    fn highway_flag_at_time() {
        let net = small_net();
        let a = net.node_at(5, 0).unwrap();
        let b = net.node_at(5, 10).unwrap();
        let r = net.route(a, b).unwrap();
        // Whole route runs along the highway row.
        assert!(r.on_highway_at(r.total_time_secs() as f64 / 2.0));
        assert!(!r.on_highway_at(0.0)); // before departure: not driving
    }

    #[test]
    fn triangle_inequality_on_times() {
        let net = small_net();
        let a = net.node_at(0, 0).unwrap();
        let b = net.node_at(9, 9).unwrap();
        let c = net.node_at(0, 9).unwrap();
        let ab = net.route(a, b).unwrap().total_time_secs();
        let ac = net.route(a, c).unwrap().total_time_secs();
        let cb = net.route(c, b).unwrap().total_time_secs();
        assert!(ab <= ac + cb + 1);
    }
}

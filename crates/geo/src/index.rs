//! Uniform-grid spatial index over base stations.
//!
//! Cell selection evaluates candidate stations near a car position many
//! millions of times per study; a bucket grid turns that from O(stations)
//! into O(stations within the search radius).

use crate::layout::{Deployment, StationInfo};
use crate::point::Point;

/// Spatial bucket index over the stations of a [`Deployment`].
#[derive(Debug, Clone)]
pub struct StationIndex {
    bucket_m: f64,
    cols: usize,
    rows: usize,
    /// Station indices per bucket (row-major).
    buckets: Vec<Vec<u32>>,
}

impl StationIndex {
    /// Build an index with the given bucket edge length.
    pub fn build(deployment: &Deployment, width_m: f64, height_m: f64, bucket_m: f64) -> Self {
        assert!(bucket_m > 0.0, "bucket size must be positive");
        let cols = (width_m / bucket_m).ceil().max(1.0) as usize;
        let rows = (height_m / bucket_m).ceil().max(1.0) as usize;
        let mut buckets = vec![Vec::new(); cols * rows];
        for (i, s) in deployment.stations().iter().enumerate() {
            let c = ((s.position.x / bucket_m) as usize).min(cols - 1);
            let r = ((s.position.y / bucket_m) as usize).min(rows - 1);
            buckets[r * cols + c].push(i as u32);
        }
        StationIndex {
            bucket_m,
            cols,
            rows,
            buckets,
        }
    }

    /// Visit every station within `radius_m` of `p`.
    ///
    /// The callback receives the station's index within the deployment's
    /// station slice, its record, and the exact distance.
    pub fn for_each_within<'d>(
        &self,
        deployment: &'d Deployment,
        p: Point,
        radius_m: f64,
        mut f: impl FnMut(u32, &'d StationInfo, f64),
    ) {
        let stations = deployment.stations();
        let r_buckets = (radius_m / self.bucket_m).ceil() as isize;
        let pc = (p.x / self.bucket_m) as isize;
        let pr = (p.y / self.bucket_m) as isize;
        let r2 = radius_m * radius_m;
        for br in (pr - r_buckets)..=(pr + r_buckets) {
            if br < 0 || br as usize >= self.rows {
                continue;
            }
            for bc in (pc - r_buckets)..=(pc + r_buckets) {
                if bc < 0 || bc as usize >= self.cols {
                    continue;
                }
                for &si in &self.buckets[br as usize * self.cols + bc as usize] {
                    let s = &stations[si as usize];
                    let d2 = s.position.distance_sq(p);
                    if d2 <= r2 {
                        f(si, s, d2.sqrt());
                    }
                }
            }
        }
    }

    /// Count stations within `radius_m` of `p` (testing/diagnostics).
    pub fn count_within(&self, deployment: &Deployment, p: Point, radius_m: f64) -> usize {
        let mut n = 0;
        self.for_each_within(deployment, p, radius_m, |_, _, _| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DeploymentConfig;
    use crate::road::{RoadNetwork, RoadNetworkConfig};
    use crate::zone::ZoneMap;

    fn deployment() -> Deployment {
        let zones = ZoneMap {
            center: Point::from_km(30.0, 30.0),
            urban_radius_m: 6_000.0,
            suburban_radius_m: 18_000.0,
        };
        let roads = RoadNetwork::generate(&RoadNetworkConfig::default(), &zones);
        Deployment::generate(
            &DeploymentConfig::default(),
            &zones,
            &roads,
            60_000.0,
            60_000.0,
            7,
        )
    }

    #[test]
    fn index_matches_brute_force() {
        let d = deployment();
        let idx = StationIndex::build(&d, 60_000.0, 60_000.0, 2_000.0);
        for (px, py, r) in [
            (30.0, 30.0, 3_000.0),
            (5.0, 55.0, 10_000.0),
            (59.9, 0.1, 8_000.0),
            (30.0, 30.0, 0.0),
        ] {
            let p = Point::from_km(px, py);
            let brute = d
                .stations()
                .iter()
                .filter(|s| s.position.distance_m(p) <= r)
                .count();
            assert_eq!(idx.count_within(&d, p, r), brute, "at {p} r={r}");
        }
    }

    #[test]
    fn callback_distances_are_exact() {
        let d = deployment();
        let idx = StationIndex::build(&d, 60_000.0, 60_000.0, 2_000.0);
        let p = Point::from_km(30.0, 30.0);
        idx.for_each_within(&d, p, 5_000.0, |si, s, dist| {
            assert_eq!(d.stations()[si as usize].id, s.id);
            assert!((dist - s.position.distance_m(p)).abs() < 1e-9);
            assert!(dist <= 5_000.0);
        });
    }

    #[test]
    fn queries_outside_region_are_safe() {
        let d = deployment();
        let idx = StationIndex::build(&d, 60_000.0, 60_000.0, 2_000.0);
        // Far outside: no panic, possibly zero results.
        let n = idx.count_within(&d, Point::from_km(-100.0, 500.0), 5_000.0);
        assert_eq!(n, 0);
    }
}

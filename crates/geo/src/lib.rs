//! # conncar-geo
//!
//! The spatial substrate under the connected-car study: a synthetic
//! metropolitan region with a road network, a cellular base-station
//! deployment, a radio propagation model and strongest-server cell
//! selection.
//!
//! The IMC'17 paper measured cars on a production radio access network.
//! That network is proprietary, so this crate builds the *minimum
//! physically-plausible* replacement that produces the observables the
//! study consumes:
//!
//! * cars move along roads at realistic speeds (→ handover chains across
//!   base stations, §4.5);
//! * base stations are densest downtown and sparse in the countryside
//!   (→ short per-cell connections in town, longer on rural highways,
//!   Figure 9);
//! * each station carries a subset of the five frequency carriers
//!   (→ the carrier usage mix of Table 3);
//! * signal strength decides which cell a car attaches to, with
//!   hysteresis (→ realistic handover counts rather than flapping).
//!
//! Everything is deterministic given the layout seed.
//!
//! ```
//! use conncar_geo::{Region, RegionConfig};
//!
//! let region = Region::generate(&RegionConfig::default(), 42);
//! let home = region.random_home(7);
//! let work = region.random_work(7);
//! let route = region.roads().route(home, work).expect("connected road grid");
//! assert!(route.total_time_secs() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod layout;
pub mod point;
pub mod propagation;
pub mod region;
pub mod road;
pub mod selection;
pub mod zone;

pub use layout::{CellInfo, Deployment, DeploymentConfig, StationInfo};
pub use point::Point;
pub use propagation::{PropagationModel, RxPower};
pub use region::{Region, RegionConfig};
pub use road::{NodeId, Route, RoadNetwork, RoadNetworkConfig};
pub use selection::{CellSelector, SelectionConfig};
pub use zone::Zone;

//! The assembled region: zones + roads + deployment + radio model.
//!
//! A [`Region`] is one synthetic metropolitan area. A study may span
//! several regions (e.g. one per US time zone) — their station id ranges
//! are kept disjoint via [`DeploymentConfig::station_id_base`].

use crate::index::StationIndex;
use crate::layout::{Deployment, DeploymentConfig, StationInfo};
use crate::point::Point;
use crate::propagation::PropagationModel;
use crate::road::{NodeId, RoadNetwork, RoadNetworkConfig};
use crate::selection::{CellSelector, SelectionConfig, ServingCell};
use crate::zone::{Zone, ZoneMap};
use conncar_types::{BaseStationId, CellId, ModemCapability, SeedSplitter, TimeZone};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Full configuration of one region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionConfig {
    /// Region width, metres.
    pub width_m: f64,
    /// Region height, metres.
    pub height_m: f64,
    /// Urban core radius, metres.
    pub urban_radius_m: f64,
    /// Suburban ring outer radius, metres.
    pub suburban_radius_m: f64,
    /// Road network parameters.
    pub roads: RoadNetworkConfig,
    /// Station deployment parameters.
    pub deployment: DeploymentConfig,
    /// Propagation model.
    pub propagation: PropagationModel,
    /// Cell selection parameters.
    pub selection: SelectionConfig,
    /// Civil time zone of the region.
    pub timezone: TimeZone,
    /// Spatial index bucket size, metres.
    pub index_bucket_m: f64,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig {
            width_m: 60_000.0,
            height_m: 60_000.0,
            urban_radius_m: 6_000.0,
            suburban_radius_m: 18_000.0,
            roads: RoadNetworkConfig::default(),
            deployment: DeploymentConfig::default(),
            propagation: PropagationModel::default(),
            selection: SelectionConfig::default(),
            timezone: TimeZone::US_EASTERN,
            index_bucket_m: 2_000.0,
        }
    }
}

impl RegionConfig {
    /// A small configuration for tests: quarter-size region, fewer sites.
    pub fn small() -> RegionConfig {
        RegionConfig {
            width_m: 24_000.0,
            height_m: 24_000.0,
            urban_radius_m: 3_500.0,
            suburban_radius_m: 9_000.0,
            roads: RoadNetworkConfig {
                width_m: 24_000.0,
                height_m: 24_000.0,
                grid_spacing_m: 2_000.0,
                highway_rows: vec![6],
                highway_cols: vec![6],
                highway_speed_kmh: 110.0,
            },
            ..Default::default()
        }
    }
}

/// One synthetic metropolitan region.
#[derive(Debug, Clone)]
pub struct Region {
    cfg: RegionConfig,
    zones: ZoneMap,
    roads: RoadNetwork,
    deployment: Deployment,
    index: StationIndex,
    selector: CellSelector,
}

impl Region {
    /// Generate the region deterministically from a seed.
    pub fn generate(cfg: &RegionConfig, seed: u64) -> Region {
        let seeds = SeedSplitter::new(seed);
        let zones = ZoneMap {
            center: Point::new(cfg.width_m / 2.0, cfg.height_m / 2.0),
            urban_radius_m: cfg.urban_radius_m,
            suburban_radius_m: cfg.suburban_radius_m,
        };
        let roads = RoadNetwork::generate(&cfg.roads, &zones);
        let deployment = Deployment::generate(
            &cfg.deployment,
            &zones,
            &roads,
            cfg.width_m,
            cfg.height_m,
            seeds.domain("deployment"),
        );
        let index = StationIndex::build(&deployment, cfg.width_m, cfg.height_m, cfg.index_bucket_m);
        let selector = CellSelector::new(cfg.selection.clone());
        Region {
            cfg: cfg.clone(),
            zones,
            roads,
            deployment,
            index,
            selector,
        }
    }

    /// The configuration this region was built from.
    pub fn config(&self) -> &RegionConfig {
        &self.cfg
    }

    /// The zone map.
    pub fn zones(&self) -> &ZoneMap {
        &self.zones
    }

    /// The road network.
    pub fn roads(&self) -> &RoadNetwork {
        &self.roads
    }

    /// The station deployment.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// The region's civil time zone.
    pub fn timezone(&self) -> TimeZone {
        self.cfg.timezone
    }

    /// Serving-cell decision at a position.
    pub fn serving_cell(
        &self,
        ue: Point,
        cap: ModemCapability,
        current: Option<CellId>,
    ) -> Option<ServingCell> {
        self.selector.select(
            &self.deployment,
            &self.index,
            &self.cfg.propagation,
            &self.zones,
            ue,
            cap,
            current,
        )
    }

    /// Station record for a cell, if it belongs to this region.
    pub fn station_of(&self, cell: CellId) -> Option<&StationInfo> {
        self.deployment.station(cell.station)
    }

    /// Zone a station sits in; `None` for foreign ids.
    pub fn station_zone(&self, id: BaseStationId) -> Option<Zone> {
        self.deployment.station(id).map(|s| s.zone)
    }

    /// Sample a home location: population lives mostly in the suburban
    /// ring, some downtown, some rural. Returns the nearest road node.
    pub fn random_home(&self, seed: u64) -> NodeId {
        self.sample_node(seed, [0.15, 0.62, 0.23])
    }

    /// Sample a work location: jobs concentrate downtown.
    pub fn random_work(&self, seed: u64) -> NodeId {
        self.sample_node(seed ^ 0x57AB_11E5, [0.52, 0.38, 0.10])
    }

    /// Sample a leisure/errand destination: mixed.
    pub fn random_errand(&self, seed: u64) -> NodeId {
        self.sample_node(seed ^ 0x0E44_A4D0, [0.30, 0.50, 0.20])
    }

    /// Sample a road node with zone weights `[urban, suburban, rural]`.
    fn sample_node(&self, seed: u64, weights: [f64; 3]) -> NodeId {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let r: f64 = rng.gen();
        let target = if r < weights[0] {
            Zone::Urban
        } else if r < weights[0] + weights[1] {
            Zone::Suburban
        } else {
            Zone::Rural
        };
        // Rejection-sample a point in the target zone; fall back to any
        // point after a bounded number of tries (tiny zones).
        for _ in 0..64 {
            let p = Point::new(
                rng.gen_range(0.0..self.cfg.width_m),
                rng.gen_range(0.0..self.cfg.height_m),
            );
            if self.zones.zone_of(p) == target {
                return self.roads.nearest_node(p);
            }
        }
        let p = Point::new(
            rng.gen_range(0.0..self.cfg.width_m),
            rng.gen_range(0.0..self.cfg.height_m),
        );
        self.roads.nearest_node(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_default_region() {
        let r = Region::generate(&RegionConfig::default(), 42);
        assert!(r.deployment().stations().len() > 100);
        assert!(r.deployment().cell_count() > r.deployment().stations().len() * 3);
        assert_eq!(r.timezone(), TimeZone::US_EASTERN);
    }

    #[test]
    fn small_region_is_smaller() {
        let big = Region::generate(&RegionConfig::default(), 42);
        let small = Region::generate(&RegionConfig::small(), 42);
        assert!(small.deployment().stations().len() < big.deployment().stations().len());
    }

    #[test]
    fn homes_and_works_are_distributed() {
        let r = Region::generate(&RegionConfig::small(), 42);
        let mut home_zones = [0usize; 3];
        let mut work_zones = [0usize; 3];
        for i in 0..300 {
            let h = r.roads().position(r.random_home(i));
            let w = r.roads().position(r.random_work(i));
            home_zones[zone_idx(r.zones().zone_of(h))] += 1;
            work_zones[zone_idx(r.zones().zone_of(w))] += 1;
        }
        // Work skews urban relative to home.
        assert!(work_zones[0] > home_zones[0]);
        // All zones are inhabited.
        assert!(home_zones.iter().all(|&n| n > 0));
    }

    fn zone_idx(z: Zone) -> usize {
        match z {
            Zone::Urban => 0,
            Zone::Suburban => 1,
            Zone::Rural => 2,
        }
    }

    #[test]
    fn serving_cell_end_to_end() {
        let r = Region::generate(&RegionConfig::small(), 42);
        let center = Point::new(r.config().width_m / 2.0, r.config().height_m / 2.0);
        let s = r
            .serving_cell(center, ModemCapability::STANDARD, None)
            .expect("downtown coverage");
        assert!(r.station_of(s.cell).is_some());
        assert_eq!(r.station_zone(s.cell.station), Some(Zone::Urban));
    }

    #[test]
    fn regeneration_is_identical() {
        let a = Region::generate(&RegionConfig::small(), 9);
        let b = Region::generate(&RegionConfig::small(), 9);
        let pa: Vec<_> = a.deployment().stations().iter().map(|s| s.position).collect();
        let pb: Vec<_> = b.deployment().stations().iter().map(|s| s.position).collect();
        assert_eq!(pa, pb);
    }
}

//! Radio propagation: log-distance path loss, sector antenna pattern,
//! deterministic shadow fading.
//!
//! The model is the standard macro-cell textbook chain
//!
//! ```text
//! RSRP = EIRP − PL(d, f, zone) + G(Δazimuth) − X(shadow)
//! ```
//!
//! It is intentionally simple — the study only needs *relative* signal
//! ordering (which cell is strongest, when does a moving car cross a
//! cell boundary), not absolute link budgets. Shadow fading is a
//! deterministic hash of (station, quantized position): the same car at
//! the same spot always sees the same shadowing, so traces are exactly
//! reproducible and spatially coherent at the ~50 m scale.

use crate::point::{angle_diff_deg, Point};
use crate::zone::{Zone, ZoneMap};
use conncar_types::Carrier;
use serde::{Deserialize, Serialize};

/// Received power in dBm (RSRP-like).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RxPower(pub f64);

impl RxPower {
    /// The dBm value.
    #[inline]
    pub const fn dbm(self) -> f64 {
        self.0
    }
}

/// Propagation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PropagationModel {
    /// Sector EIRP in dBm (transmit power + antenna boresight gain).
    pub eirp_dbm: f64,
    /// Reference path loss at 1 km, 700 MHz, free-ish space, dB.
    pub pl_ref_db: f64,
    /// Antenna horizontal half-power beamwidth, degrees.
    pub hpbw_deg: f64,
    /// Maximum front-to-back attenuation, dB.
    pub max_attenuation_db: f64,
    /// Quantization of shadow-fading texture, metres.
    pub shadow_grid_m: f64,
}

impl Default for PropagationModel {
    fn default() -> Self {
        PropagationModel {
            eirp_dbm: 58.0,
            pl_ref_db: 100.0,
            hpbw_deg: 65.0,
            max_attenuation_db: 20.0,
            shadow_grid_m: 400.0,
        }
    }
}

impl PropagationModel {
    /// Path loss in dB from a station at `site` to a terminal at `ue`,
    /// on `carrier`, through `zone` clutter.
    pub fn path_loss_db(&self, site: Point, ue: Point, carrier: Carrier, zone: Zone) -> f64 {
        let d_km = (site.distance_m(ue) / 1_000.0).max(0.02); // clamp at 20 m
        let n = zone.path_loss_exponent();
        let f_term = 20.0 * (carrier.frequency_mhz() as f64 / 700.0).log10();
        self.pl_ref_db + 10.0 * n * d_km.log10() + f_term
    }

    /// Horizontal antenna gain relative to boresight, dB (≤ 0), using the
    /// 3GPP parabolic pattern `-min(12 (Δ/HPBW)², A_max)`.
    pub fn antenna_gain_db(&self, sector_azimuth_deg: f64, bearing_deg: f64) -> f64 {
        let delta = angle_diff_deg(sector_azimuth_deg, bearing_deg);
        -(12.0 * (delta / self.hpbw_deg).powi(2)).min(self.max_attenuation_db)
    }

    /// Deterministic shadow-fading term in dB for (station, position).
    ///
    /// A hash of the station id and the position quantized to
    /// `shadow_grid_m` drives a zero-mean approximately normal variate
    /// (sum of three uniforms), scaled by the zone's sigma.
    pub fn shadow_db(&self, station_id: u32, ue: Point, zone: Zone) -> f64 {
        let qx = (ue.x / self.shadow_grid_m).floor() as i64;
        let qy = (ue.y / self.shadow_grid_m).floor() as i64;
        let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ (station_id as u64).wrapping_mul(0xA24B_AED4_963E_E407);
        h ^= (qx as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25);
        h = h.rotate_left(23);
        h ^= (qy as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        // Three 21-bit uniforms → Irwin–Hall(3), mean 1.5, var 3/12.
        let u1 = (h & 0x1F_FFFF) as f64 / 0x1F_FFFF as f64;
        let u2 = ((h >> 21) & 0x1F_FFFF) as f64 / 0x1F_FFFF as f64;
        let u3 = ((h >> 42) & 0x1F_FFFF) as f64 / 0x1F_FFFF as f64;
        let z = (u1 + u2 + u3 - 1.5) / 0.5; // ≈ N(0,1)
        z * zone.shadow_sigma_db()
    }

    /// Full received power for one cell at one terminal position.
    pub fn rx_power(
        &self,
        station_id: u32,
        site: Point,
        sector_azimuth_deg: f64,
        carrier: Carrier,
        ue: Point,
        zones: &ZoneMap,
    ) -> RxPower {
        let zone = zones.zone_of(ue);
        let bearing = site.azimuth_deg_to(ue);
        let pl = self.path_loss_db(site, ue, carrier, zone);
        let g = self.antenna_gain_db(sector_azimuth_deg, bearing);
        let x = self.shadow_db(station_id, ue, zone);
        RxPower(self.eirp_dbm - pl + g - x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zones() -> ZoneMap {
        ZoneMap {
            center: Point::from_km(30.0, 30.0),
            urban_radius_m: 6_000.0,
            suburban_radius_m: 18_000.0,
        }
    }

    #[test]
    fn path_loss_increases_with_distance() {
        let m = PropagationModel::default();
        let site = Point::from_km(0.0, 0.0);
        let near = m.path_loss_db(site, Point::from_km(0.5, 0.0), Carrier::C1, Zone::Rural);
        let far = m.path_loss_db(site, Point::from_km(5.0, 0.0), Carrier::C1, Zone::Rural);
        assert!(far > near + 20.0, "decade of distance ≈ 28 dB at n=2.8");
    }

    #[test]
    fn path_loss_increases_with_frequency() {
        let m = PropagationModel::default();
        let site = Point::from_km(0.0, 0.0);
        let ue = Point::from_km(2.0, 0.0);
        let low = m.path_loss_db(site, ue, Carrier::C1, Zone::Suburban);
        let high = m.path_loss_db(site, ue, Carrier::C5, Zone::Suburban);
        // 700 → 2300 MHz is +10.3 dB with the 20 log10(f) term.
        assert!((high - low - 20.0 * (2_300.0f64 / 700.0).log10()).abs() < 1e-9);
    }

    #[test]
    fn urban_clutter_attenuates_more() {
        let m = PropagationModel::default();
        let site = Point::from_km(0.0, 0.0);
        let ue = Point::from_km(3.0, 0.0);
        let u = m.path_loss_db(site, ue, Carrier::C3, Zone::Urban);
        let r = m.path_loss_db(site, ue, Carrier::C3, Zone::Rural);
        assert!(u > r);
    }

    #[test]
    fn antenna_pattern() {
        let m = PropagationModel::default();
        assert_eq!(m.antenna_gain_db(90.0, 90.0), 0.0);
        // At the half-power beamwidth edge: -3 dB by construction.
        let g = m.antenna_gain_db(90.0, 90.0 + m.hpbw_deg / 2.0);
        assert!((g + 3.0).abs() < 1e-9);
        // Behind the antenna: floor at max attenuation.
        assert_eq!(m.antenna_gain_db(0.0, 180.0), -m.max_attenuation_db);
    }

    #[test]
    fn shadow_is_deterministic_and_coherent() {
        let m = PropagationModel::default();
        // Point chosen in the middle of a 50 m quantum so a 10 m nudge
        // stays within it.
        let p = Point::new(12_325.0, 23_425.0);
        let a = m.shadow_db(7, p, Zone::Suburban);
        let b = m.shadow_db(7, p, Zone::Suburban);
        assert_eq!(a, b);
        // Within the same 50 m quantum: identical (spatial coherence).
        let q = Point::new(p.x + 10.0, p.y + 10.0);
        assert_eq!(m.shadow_db(7, q, Zone::Suburban), a);
        // Different station decorrelates.
        assert_ne!(m.shadow_db(8, p, Zone::Suburban), a);
    }

    #[test]
    fn shadow_is_roughly_zero_mean_and_bounded() {
        let m = PropagationModel::default();
        let mut sum = 0.0;
        let mut n = 0;
        for sx in 0..40 {
            for sy in 0..40 {
                let p = Point::new(sx as f64 * 73.0, sy as f64 * 91.0);
                let v = m.shadow_db(3, p, Zone::Suburban);
                assert!(v.abs() <= 3.0 * Zone::Suburban.shadow_sigma_db() + 1e-9);
                sum += v;
                n += 1;
            }
        }
        let mean: f64 = sum / n as f64;
        assert!(mean.abs() < 1.0, "shadow mean {mean} should be ≈ 0");
    }

    #[test]
    fn rx_power_prefers_facing_sector() {
        let m = PropagationModel::default();
        let z = zones();
        let site = Point::from_km(30.0, 30.0);
        let ue = Point::from_km(31.0, 30.0); // due east
        let facing = m.rx_power(1, site, 90.0, Carrier::C3, ue, &z);
        let away = m.rx_power(1, site, 270.0, Carrier::C3, ue, &z);
        assert!(facing.dbm() > away.dbm());
    }
}

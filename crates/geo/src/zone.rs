//! Land-use zones of the synthetic region.
//!
//! The region is a classic monocentric metro: an urban core, a suburban
//! ring, and rural land beyond, crossed by highways. Zones drive base
//! station density (capacity follows people), propagation exponents
//! (clutter), road speeds and where cars live and work.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// Land-use classification of a location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Zone {
    /// Dense downtown core.
    Urban,
    /// Residential/commercial ring.
    Suburban,
    /// Countryside and exurbs.
    Rural,
}

impl Zone {
    /// Path-loss exponent for log-distance propagation in this clutter.
    pub const fn path_loss_exponent(self) -> f64 {
        match self {
            Zone::Urban => 3.5,
            Zone::Suburban => 3.2,
            Zone::Rural => 2.8,
        }
    }

    /// Lognormal shadow-fading standard deviation, dB.
    pub const fn shadow_sigma_db(self) -> f64 {
        match self {
            Zone::Urban => 5.0,
            Zone::Suburban => 4.5,
            Zone::Rural => 3.5,
        }
    }

    /// Typical inter-site distance for the station lattice, metres.
    pub const fn site_spacing_m(self) -> f64 {
        match self {
            Zone::Urban => 1_200.0,
            Zone::Suburban => 2_600.0,
            Zone::Rural => 7_000.0,
        }
    }

    /// Surface street speed, km/h.
    pub const fn street_speed_kmh(self) -> f64 {
        match self {
            Zone::Urban => 35.0,
            Zone::Suburban => 55.0,
            Zone::Rural => 75.0,
        }
    }
}

/// The concentric-zone map of the region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZoneMap {
    /// Centre of the urban core.
    pub center: Point,
    /// Radius of the urban core, metres.
    pub urban_radius_m: f64,
    /// Outer radius of the suburban ring, metres.
    pub suburban_radius_m: f64,
}

impl ZoneMap {
    /// Classify a point.
    pub fn zone_of(&self, p: Point) -> Zone {
        let d = self.center.distance_m(p);
        if d <= self.urban_radius_m {
            Zone::Urban
        } else if d <= self.suburban_radius_m {
            Zone::Suburban
        } else {
            Zone::Rural
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> ZoneMap {
        ZoneMap {
            center: Point::from_km(30.0, 30.0),
            urban_radius_m: 6_000.0,
            suburban_radius_m: 18_000.0,
        }
    }

    #[test]
    fn concentric_classification() {
        let m = map();
        assert_eq!(m.zone_of(Point::from_km(30.0, 30.0)), Zone::Urban);
        assert_eq!(m.zone_of(Point::from_km(30.0, 35.9)), Zone::Urban);
        assert_eq!(m.zone_of(Point::from_km(30.0, 40.0)), Zone::Suburban);
        assert_eq!(m.zone_of(Point::from_km(30.0, 55.0)), Zone::Rural);
        assert_eq!(m.zone_of(Point::from_km(0.0, 0.0)), Zone::Rural);
    }

    #[test]
    fn parameters_are_ordered_by_density() {
        assert!(Zone::Urban.site_spacing_m() < Zone::Suburban.site_spacing_m());
        assert!(Zone::Suburban.site_spacing_m() < Zone::Rural.site_spacing_m());
        assert!(Zone::Urban.path_loss_exponent() > Zone::Rural.path_loss_exponent());
        assert!(Zone::Urban.street_speed_kmh() < Zone::Rural.street_speed_kmh());
    }
}

//! Strongest-server cell selection with carrier priority and hysteresis.
//!
//! A terminal attaches to the cell with the best *selection score*:
//! received power plus a per-carrier priority bonus (operators steer
//! traffic onto wide mid-band LTE carriers when coverage allows, and use
//! low-band and 3G as coverage layers — the mechanism behind Table 3's
//! time-share mix). A serving cell is only abandoned when a competitor
//! beats it by a hysteresis margin or its own signal drops below the
//! minimum, which keeps handover counts realistic instead of flapping on
//! every shadow-fading ripple.

use crate::index::StationIndex;
use crate::layout::Deployment;
use crate::point::Point;
use crate::propagation::{PropagationModel, RxPower};
use crate::zone::ZoneMap;
use conncar_types::{Carrier, CellId, ModemCapability};
use serde::{Deserialize, Serialize};

/// Selection tuning parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectionConfig {
    /// Minimum usable received power, dBm.
    pub min_rx_dbm: f64,
    /// Score bonus per step of carrier selection priority, dB.
    pub priority_bonus_db: f64,
    /// Hysteresis a challenger must overcome to trigger handover, dB.
    pub hysteresis_db: f64,
    /// Initial candidate search radius, metres.
    pub search_radius_m: f64,
    /// Maximum search radius when initial search finds nothing, metres.
    pub max_search_radius_m: f64,
    /// Amplitude of the idle-mode load-balancing bias, dB. Operators
    /// spread idle UEs across co-deployed carriers; we model it as a
    /// deterministic static per-cell score offset in
    /// `[-amplitude, +amplitude]`, which splits population-level time
    /// between equally adequate carriers without per-drive flapping.
    pub balance_jitter_db: f64,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            min_rx_dbm: -118.0,
            priority_bonus_db: 4.0,
            hysteresis_db: 6.0,
            search_radius_m: 9_000.0,
            max_search_radius_m: 40_000.0,
            balance_jitter_db: 4.0,
        }
    }
}

/// A selected serving cell with its link quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingCell {
    /// The chosen cell.
    pub cell: CellId,
    /// Received power from that cell.
    pub rx: RxPower,
    /// Selection score (rx + priority bonus).
    pub score: f64,
}

/// Deterministic load-balancing offset in dB for a cell.
///
/// Static per cell (not per position): a spatially varying offset would
/// re-roll as a car drives and cause ping-pong handovers every sample;
/// a fixed per-cell bias splits *population-level* time between
/// co-deployed carriers while keeping each drive's serving chain smooth.
fn balance_jitter_db(amplitude: f64, cell: CellId) -> f64 {
    if amplitude <= 0.0 {
        return 0.0;
    }
    let mut h = (cell.station.0 as u64) << 20
        ^ (cell.sector as u64) << 12
        ^ (cell.carrier.index() as u64) << 8;
    h = h.wrapping_mul(0x9FB2_1C65_1E98_DF25);
    h = h.rotate_left(19) ^ 0xC2B2_AE3D_27D4_EB4F;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    (2.0 * u - 1.0) * amplitude
}

/// Evaluates serving-cell choices against a deployment.
#[derive(Debug, Clone)]
pub struct CellSelector {
    cfg: SelectionConfig,
    /// Per-carrier frequency path-loss term, precomputed.
    freq_term_db: [f64; 5],
    /// Per-carrier priority bonus, precomputed.
    bonus_db: [f64; 5],
}

impl CellSelector {
    /// Build a selector for a propagation model.
    pub fn new(cfg: SelectionConfig) -> CellSelector {
        let mut freq_term_db = [0.0; 5];
        let mut bonus_db = [0.0; 5];
        for c in conncar_types::ALL_CARRIERS {
            freq_term_db[c.index()] = 20.0 * (c.frequency_mhz() as f64 / 700.0).log10();
            bonus_db[c.index()] = c.selection_priority() as f64 * cfg.priority_bonus_db;
        }
        CellSelector {
            cfg,
            freq_term_db,
            bonus_db,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SelectionConfig {
        &self.cfg
    }

    /// Best cell at `ue` for a modem with `cap`, considering hysteresis
    /// against `current`. Returns `None` when no usable signal exists
    /// (deep rural gap) — the modem stays detached, which the CDR layer
    /// records as a coverage gap.
    pub fn select(
        &self,
        deployment: &Deployment,
        index: &StationIndex,
        prop: &PropagationModel,
        zones: &ZoneMap,
        ue: Point,
        cap: ModemCapability,
        current: Option<CellId>,
    ) -> Option<ServingCell> {
        if cap.is_empty() {
            return None;
        }
        let mut radius = self.cfg.search_radius_m;
        loop {
            if let Some(best) = self.scan(deployment, index, prop, zones, ue, cap, radius) {
                // Hysteresis: keep the current cell unless the winner is
                // decisively better or the current cell itself fails.
                if let Some(cur) = current {
                    if cur != best.cell {
                        if let Some(cur_eval) = self.evaluate(deployment, prop, zones, ue, cur) {
                            if cur_eval.rx.dbm() >= self.cfg.min_rx_dbm
                                && best.score < cur_eval.score + self.cfg.hysteresis_db
                            {
                                return Some(cur_eval);
                            }
                        }
                    }
                }
                return Some(best);
            }
            if radius >= self.cfg.max_search_radius_m {
                return None;
            }
            radius = (radius * 2.0).min(self.cfg.max_search_radius_m);
        }
    }

    /// Evaluate one specific cell at a position (used for hysteresis and
    /// for diagnostics). `None` if the cell does not exist.
    pub fn evaluate(
        &self,
        deployment: &Deployment,
        prop: &PropagationModel,
        zones: &ZoneMap,
        ue: Point,
        cell: CellId,
    ) -> Option<ServingCell> {
        let station = deployment.station(cell.station)?;
        if cell.sector >= station.sectors || !station.carriers.contains(&cell.carrier) {
            return None;
        }
        let rx = prop.rx_power(
            station.id.0,
            station.position,
            station.sector_azimuth_deg(cell.sector),
            cell.carrier,
            ue,
            zones,
        );
        Some(ServingCell {
            cell,
            rx,
            score: rx.dbm()
                + self.bonus_db[cell.carrier.index()]
                + balance_jitter_db(self.cfg.balance_jitter_db, cell),
        })
    }

    /// One scan pass at a fixed radius.
    fn scan(
        &self,
        deployment: &Deployment,
        index: &StationIndex,
        prop: &PropagationModel,
        zones: &ZoneMap,
        ue: Point,
        cap: ModemCapability,
        radius_m: f64,
    ) -> Option<ServingCell> {
        let zone = zones.zone_of(ue);
        let n_exp = zone.path_loss_exponent();
        let mut best: Option<ServingCell> = None;
        index.for_each_within(deployment, ue, radius_m, |_, station, dist_m| {
            // Distance/zone part of the path loss, shared by all cells of
            // the station.
            let d_km = (dist_m / 1_000.0).max(0.02);
            let pl_base = prop.pl_ref_db + 10.0 * n_exp * d_km.log10();
            let shadow = prop.shadow_db(station.id.0, ue, zone);
            let bearing = station.position.azimuth_deg_to(ue);
            for sector in 0..station.sectors {
                let gain = prop.antenna_gain_db(station.sector_azimuth_deg(sector), bearing);
                for &carrier in &station.carriers {
                    if !cap.supports(carrier) {
                        continue;
                    }
                    let rx_dbm =
                        prop.eirp_dbm - pl_base - self.freq_term_db[carrier.index()] + gain
                            - shadow;
                    if rx_dbm < self.cfg.min_rx_dbm {
                        continue;
                    }
                    let cell_id = CellId::new(station.id, sector, carrier);
                    let score = rx_dbm
                        + self.bonus_db[carrier.index()]
                        + balance_jitter_db(self.cfg.balance_jitter_db, cell_id);
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            score > b.score
                                || (score == b.score && (station.id, sector, carrier) < {
                                    (b.cell.station, b.cell.sector, b.cell.carrier)
                                })
                        }
                    };
                    if better {
                        best = Some(ServingCell {
                            cell: CellId::new(station.id, sector, carrier),
                            rx: RxPower(rx_dbm),
                            score,
                        });
                    }
                }
            }
        });
        best
    }

    /// Convenience: which carrier a capability-limited modem would pick
    /// when all carriers are equally strong — the highest priority one,
    /// ties broken by label order (C3 over C4).
    pub fn preferred_carrier(cap: ModemCapability) -> Option<Carrier> {
        let mut best: Option<Carrier> = None;
        for c in cap.iter() {
            if best
                .map(|b| c.selection_priority() > b.selection_priority())
                .unwrap_or(true)
            {
                best = Some(c);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DeploymentConfig;
    use crate::road::{RoadNetwork, RoadNetworkConfig};

    struct World {
        deployment: Deployment,
        index: StationIndex,
        prop: PropagationModel,
        zones: ZoneMap,
        selector: CellSelector,
    }

    fn world() -> World {
        let zones = ZoneMap {
            center: Point::from_km(30.0, 30.0),
            urban_radius_m: 6_000.0,
            suburban_radius_m: 18_000.0,
        };
        let roads = RoadNetwork::generate(&RoadNetworkConfig::default(), &zones);
        let deployment = Deployment::generate(
            &DeploymentConfig::default(),
            &zones,
            &roads,
            60_000.0,
            60_000.0,
            7,
        );
        let index = StationIndex::build(&deployment, 60_000.0, 60_000.0, 2_000.0);
        World {
            deployment,
            index,
            prop: PropagationModel::default(),
            zones,
            selector: CellSelector::new(SelectionConfig::default()),
        }
    }

    impl World {
        fn select(&self, ue: Point, cap: ModemCapability, cur: Option<CellId>) -> Option<ServingCell> {
            self.selector.select(
                &self.deployment,
                &self.index,
                &self.prop,
                &self.zones,
                ue,
                cap,
                cur,
            )
        }
    }

    #[test]
    fn downtown_always_has_service() {
        let w = world();
        for (x, y) in [(30.0, 30.0), (28.0, 31.0), (33.0, 29.0)] {
            let s = w
                .select(Point::from_km(x, y), ModemCapability::STANDARD, None)
                .expect("urban coverage");
            assert!(s.rx.dbm() >= w.selector.config().min_rx_dbm);
        }
    }

    #[test]
    fn selection_is_deterministic() {
        let w = world();
        let p = Point::from_km(25.0, 40.0);
        let a = w.select(p, ModemCapability::STANDARD, None);
        let b = w.select(p, ModemCapability::STANDARD, None);
        assert_eq!(a, b);
    }

    #[test]
    fn capability_limits_carrier() {
        let w = world();
        let p = Point::from_km(30.0, 30.0);
        let only_c2 = w.select(p, ModemCapability::UMTS_ONLY, None);
        if let Some(s) = only_c2 {
            assert_eq!(s.cell.carrier, Carrier::C2);
        }
        let none = w.select(p, ModemCapability::NONE, None);
        assert!(none.is_none());
    }

    #[test]
    fn hysteresis_keeps_current_cell() {
        let w = world();
        let p = Point::from_km(30.0, 30.0);
        let first = w.select(p, ModemCapability::STANDARD, None).unwrap();
        // Tiny move: the winner from 5 m away must not displace the
        // current serving cell thanks to hysteresis.
        let p2 = Point::new(p.x + 5.0, p.y);
        let second = w
            .select(p2, ModemCapability::STANDARD, Some(first.cell))
            .unwrap();
        assert_eq!(second.cell, first.cell);
    }

    #[test]
    fn long_drive_hands_over() {
        let w = world();
        let mut cur: Option<CellId> = None;
        let mut distinct = std::collections::HashSet::new();
        for i in 0..60 {
            let p = Point::from_km(10.0 + i as f64 * 0.666, 30.0);
            if let Some(s) = w.select(p, ModemCapability::STANDARD, cur) {
                distinct.insert(s.cell);
                cur = Some(s.cell);
            }
        }
        assert!(
            distinct.len() >= 5,
            "40 km drive should cross several cells, saw {}",
            distinct.len()
        );
    }

    #[test]
    fn evaluate_rejects_nonexistent_cells() {
        let w = world();
        let p = Point::from_km(30.0, 30.0);
        let s = w.select(p, ModemCapability::STANDARD, None).unwrap();
        let station = w.deployment.station(s.cell.station).unwrap();
        // A sector index beyond the station's sector count.
        let bogus = CellId::new(station.id, station.sectors, s.cell.carrier);
        assert!(w
            .selector
            .evaluate(&w.deployment, &w.prop, &w.zones, p, bogus)
            .is_none());
    }

    #[test]
    fn preferred_carrier_follows_priority() {
        assert_eq!(
            CellSelector::preferred_carrier(ModemCapability::STANDARD),
            Some(Carrier::C3)
        );
        assert_eq!(
            CellSelector::preferred_carrier(ModemCapability::UMTS_ONLY),
            Some(Carrier::C2)
        );
        assert_eq!(CellSelector::preferred_carrier(ModemCapability::NONE), None);
    }

    #[test]
    fn mid_band_preferred_where_deployed() {
        // Aggregate preference: downtown selections should be dominated
        // by the high-priority C3 carrier.
        let w = world();
        let mut c3 = 0;
        let mut total = 0;
        for i in 0..50 {
            let p = Point::from_km(27.0 + (i % 10) as f64 * 0.6, 27.0 + (i / 10) as f64 * 1.2);
            if let Some(s) = w.select(p, ModemCapability::STANDARD, None) {
                total += 1;
                if s.cell.carrier == Carrier::C3 {
                    c3 += 1;
                }
            }
        }
        assert!(total > 40);
        assert!(
            c3 * 2 > total,
            "C3 should serve most of downtown, got {c3}/{total}"
        );
    }
}

//! The serve plane's live metrics: one [`ServeMetrics`] per engine.
//!
//! This is the bridge between [`conncar_obs::live`] and the serve path:
//! a fixed registry of `serve.live.*` counters / gauges / latency
//! histograms plus a [`FlightRecorder`] ring of recent scheduler
//! events. Every key the plane emits is declared once in
//! [`METRIC_REGISTRY`]; lint rule L8 cross-checks each resolve site
//! against that constant, so a typo'd key cannot silently route into
//! the sink and a registered key cannot rot unused.
//!
//! Time never enters here ambiently: [`ServeMetrics::now`] reads the
//! injected clock the engine's store was built with, and reads nothing
//! at all when the plane is disabled — that switch is the
//! instrumented-vs-stripped comparison `serve_load` measures overhead
//! with. Under `NullClock` every recorded duration is zero and
//! snapshots are byte-identical across double runs.

use conncar_obs::live::{
    FlightRecorder, LiveCounter, LiveGauge, LiveHistogram, LiveMetrics, MetricKind,
};
use conncar_obs::SharedClock;
use std::sync::Arc;

/// Flight-recorder event codes (the `code` byte of each
/// [`conncar_obs::live::FlightEvent`] the serve plane posts).
pub mod event {
    /// A request was admitted into a batch (`a` = request digest).
    pub const ADMIT: u8 = 1;
    /// An epoch compiled into one shared scan (`a` = epoch size).
    pub const EPOCH_COMPILE: u8 = 2;
    /// A duplicate in-batch request coalesced (`a` = digest).
    pub const COALESCE: u8 = 3;
    /// Result served from the cache (`a` = digest).
    pub const CACHE_HIT: u8 = 4;
    /// Result had to be computed (`a` = digest).
    pub const CACHE_MISS: u8 = 5;
    /// An LRU entry was evicted (`a` = evicted digest).
    pub const CACHE_EVICT: u8 = 6;
    /// A computed result was inserted (`a` = digest).
    pub const CACHE_INSERT: u8 = 7;
    /// Admission refused at the queue bound (`a` = queued, `b` =
    /// limit).
    pub const OVERLOAD: u8 = 8;
    /// A query's end-to-end time crossed the slow threshold (`a` =
    /// digest, `b` = nanoseconds).
    pub const SLOW_QUERY: u8 = 9;

    /// Human name for an event code (dashboard rendering).
    pub fn name(code: u8) -> &'static str {
        match code {
            ADMIT => "admit",
            EPOCH_COMPILE => "epoch",
            COALESCE => "coalesce",
            CACHE_HIT => "cache-hit",
            CACHE_MISS => "cache-miss",
            CACHE_EVICT => "cache-evict",
            CACHE_INSERT => "cache-insert",
            OVERLOAD => "overload",
            SLOW_QUERY => "slow-query",
            _ => "unknown",
        }
    }
}

/// Central registry of every live metric key the serve plane emits.
///
/// Lint rule L8 enforces the two-way contract: every
/// `.counter("…")` / `.gauge("…")` / `.histogram("…")` resolve site in
/// the workspace must name a key listed here, and every key listed here
/// must have a resolve site.
pub const METRIC_REGISTRY: &[(&str, MetricKind)] = &[
    ("serve.live.queries", MetricKind::Counter),
    ("serve.live.rejected", MetricKind::Counter),
    ("serve.live.overloaded", MetricKind::Counter),
    ("serve.live.cache_hits", MetricKind::Counter),
    ("serve.live.cache_misses", MetricKind::Counter),
    ("serve.live.cache_evictions", MetricKind::Counter),
    ("serve.live.cache_inserts", MetricKind::Counter),
    ("serve.live.coalesced", MetricKind::Counter),
    ("serve.live.epochs", MetricKind::Counter),
    ("serve.live.slow_queries", MetricKind::Counter),
    ("serve.live.queue_depth", MetricKind::Gauge),
    ("serve.live.last_epoch_size", MetricKind::Gauge),
    ("serve.live.cache_hit_permille", MetricKind::Gauge),
    ("serve.live.coalesce_permille", MetricKind::Gauge),
    ("serve.live.e2e_ns", MetricKind::Histogram),
    ("serve.live.queue_wait_ns", MetricKind::Histogram),
    ("serve.live.scan_ns", MetricKind::Histogram),
    ("serve.live.cache_lookup_ns", MetricKind::Histogram),
];

/// Construction knobs for a [`ServeMetrics`].
#[derive(Debug, Clone, Copy)]
pub struct MetricsConfig {
    /// Record anything at all? `false` builds the same registry but
    /// skips every clock read and atomic write on the hot path — the
    /// "stripped" half of the overhead measurement.
    pub enabled: bool,
    /// End-to-end nanoseconds above which a query posts a
    /// [`event::SLOW_QUERY`] flight event.
    pub slow_threshold_ns: u64,
    /// Flight-recorder ring capacity (rounded up to a power of two).
    pub ring_capacity: usize,
}

impl Default for MetricsConfig {
    fn default() -> MetricsConfig {
        MetricsConfig {
            enabled: true,
            slow_threshold_ns: 100_000_000,
            ring_capacity: 256,
        }
    }
}

/// The live metrics plane of one engine: registry + flight ring +
/// injected clock, shared as one `Arc` by the engine, the scheduler
/// handle, and the TCP workers answering stats frames.
pub struct ServeMetrics {
    live: LiveMetrics,
    flight: FlightRecorder,
    clock: SharedClock,
    slow_threshold_ns: u64,
    enabled: bool,
    pub(crate) queries: Arc<LiveCounter>,
    pub(crate) rejected: Arc<LiveCounter>,
    pub(crate) overloaded: Arc<LiveCounter>,
    pub(crate) cache_hits: Arc<LiveCounter>,
    pub(crate) cache_misses: Arc<LiveCounter>,
    pub(crate) cache_evictions: Arc<LiveCounter>,
    pub(crate) cache_inserts: Arc<LiveCounter>,
    pub(crate) coalesced: Arc<LiveCounter>,
    pub(crate) epochs: Arc<LiveCounter>,
    pub(crate) slow_queries: Arc<LiveCounter>,
    pub(crate) queue_depth: Arc<LiveGauge>,
    pub(crate) last_epoch_size: Arc<LiveGauge>,
    cache_hit_permille: Arc<LiveGauge>,
    coalesce_permille: Arc<LiveGauge>,
    pub(crate) e2e_ns: Arc<LiveHistogram>,
    pub(crate) queue_wait_ns: Arc<LiveHistogram>,
    pub(crate) scan_ns: Arc<LiveHistogram>,
    pub(crate) cache_lookup_ns: Arc<LiveHistogram>,
}

impl ServeMetrics {
    /// Build the plane over the engine's injected clock.
    pub fn new(clock: SharedClock, cfg: MetricsConfig) -> ServeMetrics {
        let live = LiveMetrics::new(METRIC_REGISTRY, cfg.enabled);
        ServeMetrics {
            queries: live.counter("serve.live.queries"),
            rejected: live.counter("serve.live.rejected"),
            overloaded: live.counter("serve.live.overloaded"),
            cache_hits: live.counter("serve.live.cache_hits"),
            cache_misses: live.counter("serve.live.cache_misses"),
            cache_evictions: live.counter("serve.live.cache_evictions"),
            cache_inserts: live.counter("serve.live.cache_inserts"),
            coalesced: live.counter("serve.live.coalesced"),
            epochs: live.counter("serve.live.epochs"),
            slow_queries: live.counter("serve.live.slow_queries"),
            queue_depth: live.gauge("serve.live.queue_depth"),
            last_epoch_size: live.gauge("serve.live.last_epoch_size"),
            cache_hit_permille: live.gauge("serve.live.cache_hit_permille"),
            coalesce_permille: live.gauge("serve.live.coalesce_permille"),
            e2e_ns: live.histogram("serve.live.e2e_ns"),
            queue_wait_ns: live.histogram("serve.live.queue_wait_ns"),
            scan_ns: live.histogram("serve.live.scan_ns"),
            cache_lookup_ns: live.histogram("serve.live.cache_lookup_ns"),
            flight: FlightRecorder::new(cfg.ring_capacity),
            slow_threshold_ns: cfg.slow_threshold_ns,
            enabled: cfg.enabled,
            clock,
            live,
        }
    }

    /// Whether the hot path should record at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Injected-clock nanoseconds, or 0 when the plane is disabled (no
    /// clock read happens on the stripped path).
    #[inline]
    pub fn now(&self) -> u64 {
        if self.enabled {
            self.clock.now_nanos()
        } else {
            0
        }
    }

    /// The slow-query threshold in nanoseconds.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns
    }

    /// The flight-recorder ring.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Record one query's end-to-end latency, posting a
    /// [`event::SLOW_QUERY`] when it crosses the threshold. Callers
    /// gate on [`ServeMetrics::enabled`].
    pub(crate) fn observe_e2e(&self, at_ns: u64, digest: u64, e2e_ns: u64) {
        self.e2e_ns.record(e2e_ns);
        if e2e_ns > self.slow_threshold_ns {
            self.slow_queries.incr();
            self.flight.post(at_ns, event::SLOW_QUERY, digest, e2e_ns);
        }
    }

    /// Snapshot the whole plane into a wire-encodable artifact.
    ///
    /// Derived rate gauges are refreshed from the counters first:
    /// `cache_hit_permille` = hits·1000 / (hits + misses) and
    /// `coalesce_permille` = coalesced·1000 / queries, both 0 when the
    /// denominator is 0. `generation` is the served store's build
    /// generation, passed in by the engine.
    pub fn snapshot(&self, generation: u64) -> crate::stats::ServeSnapshot {
        let hits = self.cache_hits.get();
        let lookups = hits.saturating_add(self.cache_misses.get());
        self.cache_hit_permille
            .set(permille(hits, lookups));
        self.coalesce_permille
            .set(permille(self.coalesced.get(), self.queries.get()));
        let live = self.live.snapshot();
        crate::stats::ServeSnapshot {
            version: crate::stats::STATS_VERSION,
            generation,
            counters: live.counters,
            gauges: live.gauges,
            histograms: live.histograms,
            events: self.flight.snapshot(),
        }
    }
}

/// `part * 1000 / whole`, 0 when `whole` is 0.
fn permille(part: u64, whole: u64) -> u64 {
    part.saturating_mul(1000).checked_div(whole).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_obs::NullClock;

    fn plane(enabled: bool) -> ServeMetrics {
        ServeMetrics::new(
            Arc::new(NullClock),
            MetricsConfig {
                enabled,
                ..MetricsConfig::default()
            },
        )
    }

    #[test]
    fn registry_covers_every_resolved_handle() {
        let m = plane(true);
        m.queries.add(10);
        m.cache_hits.add(3);
        m.cache_misses.add(7);
        m.coalesced.add(5);
        m.e2e_ns.record(1234);
        let snap = m.snapshot(42);
        assert_eq!(snap.generation, 42);
        let get = |key: &str| {
            snap.counters
                .iter()
                .chain(snap.gauges.iter())
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
        };
        // Had any handle resolved a typo'd key it would have hit the
        // sink and read back as None here.
        assert_eq!(get("serve.live.queries"), Some(10));
        assert_eq!(get("serve.live.cache_hits"), Some(3));
        assert_eq!(get("serve.live.cache_hit_permille"), Some(300));
        assert_eq!(get("serve.live.coalesce_permille"), Some(500));
        assert_eq!(
            snap.counters.len() + snap.gauges.len() + snap.histograms.len(),
            METRIC_REGISTRY.len()
        );
    }

    #[test]
    fn disabled_plane_reads_no_time() {
        let m = plane(false);
        assert!(!m.enabled());
        assert_eq!(m.now(), 0);
    }

    #[test]
    fn flight_events_carry_codes() {
        let m = plane(true);
        m.flight().post(m.now(), event::ADMIT, 7, 0);
        m.flight().post(m.now(), event::OVERLOAD, 8, 8);
        let events = m.snapshot(0).events;
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].code, event::ADMIT);
        assert_eq!(event::name(events[1].code), "overload");
    }
}

//! Framed wire protocol for the TCP front door.
//!
//! Frames are `u32` little-endian length + payload, capped at
//! [`MAX_FRAME`]. A request payload is a canonical
//! [`QueryRequest`](crate::QueryRequest) encoding; a response payload
//! is:
//!
//! ```text
//! u8 status            0 = ok, 1 = error
//! ok:   u8 cache_hit, QueryStats (7 LE u64 fields), QueryValue bytes
//! error: u8 kind (0 generic, 1 invalid-filter, 2 overloaded), payload
//! ```
//!
//! Typed errors that matter to clients round-trip structurally
//! (invalid filter, overloaded); everything else degrades to a
//! message. The encoding is deterministic end to end, so a response
//! stream can be diffed across runs just like `SERVE_OBS.json`.
//!
//! A second request kind shares the framing: a **stats request**
//! (see [`crate::stats`]) whose payload opens with the reserved magic
//! byte `0xFF` — unambiguous against a query payload, which always
//! opens with its encoding version. Its response payload is a
//! canonical [`crate::stats::ServeSnapshot`] encoding, not a status
//! byte.

use crate::engine::QueryResponse;
use crate::request::{Cursor, QueryValue};
use conncar_store::QueryStats;
use conncar_types::{Error, Result};
use std::io::{Read, Write};

/// Maximum frame payload size (16 MiB): large enough for any bench
/// result set, small enough to reject garbage lengths before
/// allocating.
pub const MAX_FRAME: usize = 16 << 20;

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. `Ok(None)` is a clean EOF at a frame boundary (the
/// peer closed); a mid-frame EOF or an oversized length is an error.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while let Some(window) = len_bytes.get_mut(filled..).filter(|w| !w.is_empty()) {
        match r.read(window)? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Encode a served result (or its typed refusal) as a response payload.
pub fn encode_response(resp: &Result<QueryResponse>) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Ok(r) => {
            out.push(0);
            out.push(u8::from(r.cache_hit));
            for v in [
                r.stats.rows_scanned,
                r.stats.rows_matched,
                u64::from(r.stats.shards_pruned),
                u64::from(r.stats.shards_scanned),
                u64::from(r.stats.index_scans),
                u64::from(r.stats.full_scans),
                r.stats.scan_nanos,
            ] {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out.extend_from_slice(&r.value.encode());
        }
        Err(Error::InvalidFilter { what, why }) => {
            out.push(1);
            out.push(1);
            put_str(&mut out, what);
            put_str(&mut out, why);
        }
        Err(Error::Overloaded { queued, limit }) => {
            out.push(1);
            out.push(2);
            out.extend_from_slice(&(*queued as u64).to_le_bytes());
            out.extend_from_slice(&(*limit as u64).to_le_bytes());
        }
        Err(other) => {
            out.push(1);
            out.push(0);
            put_str(&mut out, &other.to_string());
        }
    }
    out
}

/// Decode a response payload back into the served result.
pub fn decode_response(bytes: &[u8]) -> Result<QueryResponse> {
    let mut c = Cursor::new(bytes);
    match c.u8()? {
        0 => {
            let cache_hit = c.u8()? == 1;
            let stats = QueryStats {
                rows_scanned: c.u64()?,
                rows_matched: c.u64()?,
                shards_pruned: read_u32_field(&mut c)?,
                shards_scanned: read_u32_field(&mut c)?,
                index_scans: read_u32_field(&mut c)?,
                full_scans: read_u32_field(&mut c)?,
                scan_nanos: c.u64()?,
            };
            // The rest of the payload is the value encoding.
            let value = QueryValue::decode(c.rest())?;
            Ok(QueryResponse {
                value,
                stats,
                cache_hit,
            })
        }
        1 => match c.u8()? {
            1 => {
                let what = take_str(&mut c)?;
                let why = take_str(&mut c)?;
                Err(Error::InvalidFilter {
                    what: intern_what(&what),
                    why,
                })
            }
            2 => Err(Error::Overloaded {
                queued: c.u64()? as usize,
                limit: c.u64()? as usize,
            }),
            _ => {
                let msg = take_str(&mut c)?;
                Err(Error::Io(format!("server error: {msg}")))
            }
        },
        t => c.bad(format!("unknown response status {t}")),
    }
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn take_str(c: &mut Cursor<'_>) -> Result<String> {
    // The claimed length is validated against the bytes actually
    // present before any allocation happens: `take` bounds-checks the
    // whole span, so a lying header fails typed instead of reserving.
    let n = c.u32()? as usize;
    let bytes = c.take(n)?;
    String::from_utf8(bytes.to_vec()).map_err(|e| Error::Decode {
        offset: None,
        why: format!("non-UTF-8 string: {e}"),
    })
}

fn read_u32_field(c: &mut Cursor<'_>) -> Result<u32> {
    let v = c.u64()?;
    u32::try_from(v).map_err(|_| Error::Decode {
        offset: None,
        why: format!("stats field {v} overflows u32"),
    })
}

/// Map a decoded `what` back onto the static names
/// [`conncar_store::Filter::validate`] uses, so the typed error
/// round-trips the wire intact.
fn intern_what(what: &str) -> &'static str {
    match what {
        "window" => "window",
        "cars" => "cars",
        "cells" => "cells",
        _ => "filter",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_response() -> Result<QueryResponse> {
        Ok(QueryResponse {
            value: QueryValue::Count(99),
            stats: QueryStats {
                rows_scanned: 7,
                rows_matched: 5,
                shards_pruned: 1,
                shards_scanned: 3,
                index_scans: 2,
                full_scans: 1,
                scan_nanos: 0,
            },
            cache_hit: true,
        })
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frames_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..buf.len() - 2];
        assert!(read_frame(&mut r).is_err());
        let mut header_only = &buf[..2];
        assert!(read_frame(&mut header_only).is_err());
    }

    #[test]
    fn oversized_length_is_rejected_before_allocating() {
        let bytes = (u32::MAX).to_le_bytes();
        let mut r = &bytes[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn responses_round_trip() {
        let ok = ok_response();
        let back = decode_response(&encode_response(&ok)).unwrap();
        let want = ok.unwrap();
        assert_eq!(back.value, want.value);
        assert_eq!(back.stats, want.stats);
        assert_eq!(back.cache_hit, want.cache_hit);
    }

    #[test]
    fn typed_errors_round_trip() {
        let invalid: Result<QueryResponse> = Err(Error::InvalidFilter {
            what: "window",
            why: "inverted".into(),
        });
        assert!(matches!(
            decode_response(&encode_response(&invalid)),
            Err(Error::InvalidFilter { what: "window", .. })
        ));
        let overloaded: Result<QueryResponse> = Err(Error::Overloaded {
            queued: 8,
            limit: 8,
        });
        assert!(matches!(
            decode_response(&encode_response(&overloaded)),
            Err(Error::Overloaded {
                queued: 8,
                limit: 8
            })
        ));
        let generic: Result<QueryResponse> = Err(Error::Io("boom".into()));
        match decode_response(&encode_response(&generic)) {
            Err(Error::Io(msg)) => assert!(msg.contains("boom")),
            other => panic!("unexpected: {other:?}"),
        }
    }
}

//! The TCP front door: a small accept pool over a [`QueryService`].
//!
//! Workers share the listener (each holds a `try_clone`) and handle one
//! connection at a time, frame by frame: decode a
//! [`QueryRequest`](crate::QueryRequest), push it through the shared
//! [`ServeHandle`], write the response frame. Because every worker
//! funnels into the same scheduler queue, concurrent connections land
//! in the same epochs — network concurrency is precisely what creates
//! scan sharing.
//!
//! Shutdown is cooperative and port-exact: set the stop flag, sever
//! every live connection (so workers blocked mid-`read_frame` return),
//! then self-connect once per worker so every blocking `accept` wakes,
//! observes the flag, and exits; finally the scheduler drains and the
//! engine comes back out for artifact emission.

use crate::engine::{QueryService, ServeEngine, ServeHandle};
use crate::request::QueryRequest;
use crate::sync::{lock_or_poisoned, lock_recover};
use crate::wire::{encode_response, read_frame, write_frame};
use conncar_types::Error;
use std::io::BufWriter;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// Live-connection registry: a slot per in-flight connection, holding a
/// `try_clone` of the accepted stream so shutdown can sever it even
/// while the owning worker is blocked reading the next frame.
///
/// Lock order (declared in `lint.toml` and enforced by rule L5): the
/// scheduler's `ServiceState` lock ranks above this table's `slots`
/// lock; nothing may take `state` while holding `slots`.
#[derive(Default)]
struct ConnTable {
    slots: Mutex<Vec<Option<TcpStream>>>,
}

impl ConnTable {
    fn register(&self, stream: &TcpStream) -> Option<usize> {
        let clone = stream.try_clone().ok()?;
        // A poisoned table degrades to "unregistered": the connection
        // still serves, it just cannot be severed early at shutdown.
        let mut slots = lock_or_poisoned(&self.slots, "serve.ConnTable").ok()?;
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(clone);
                return Some(i);
            }
        }
        slots.push(Some(clone));
        Some(slots.len() - 1)
    }

    fn deregister(&self, slot: usize) {
        // Worker teardown path: recover past poison, clearing a slot
        // touches nothing but its own `Option`.
        if let Some(s) = lock_recover(&self.slots).get_mut(slot) {
            *s = None;
        }
    }

    fn sever_all(&self) {
        // Take the streams under the guard, sever after it drops:
        // socket shutdown is I/O and must not run while the table
        // lock is held (lint rule L5).
        let live: Vec<TcpStream> = lock_recover(&self.slots)
            .iter_mut()
            .filter_map(Option::take)
            .collect();
        for conn in &live {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

/// A running TCP query server.
pub struct ServeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<ConnTable>,
    workers: Vec<thread::JoinHandle<()>>,
    service: Option<QueryService>,
}

impl ServeServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve
    /// `engine` with `workers` accept threads (clamped to at least 1)
    /// behind a queue bounded at `queue_limit`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: ServeEngine,
        workers: usize,
        queue_limit: usize,
    ) -> std::io::Result<ServeServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let service = QueryService::start(engine, queue_limit)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::Other, e.to_string()))?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(ConnTable::default());
        let workers = (0..workers.max(1))
            .map(|i| {
                let listener = listener.try_clone()?;
                let handle = service.handle();
                let stop = Arc::clone(&stop);
                let conns = Arc::clone(&conns);
                thread::Builder::new()
                    .name(format!("conncar-serve-worker-{i}"))
                    .spawn(move || worker_loop(&listener, &handle, &stop, &conns))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ServeServer {
            addr: local,
            stop,
            conns,
            workers,
            service: Some(service),
        })
    }

    /// The bound address (resolved port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, join the workers, drain the scheduler, and
    /// return the engine with its counters and cache intact.
    ///
    /// Returns [`Error::Poisoned`] when the scheduler thread died: the
    /// server still tears down cleanly (workers joined, port released),
    /// but the engine's counters are gone with the panicked thread.
    pub fn shutdown(mut self) -> conncar_types::Result<ServeEngine> {
        self.stop_workers();
        match self.service.take() {
            Some(service) => service.shutdown(),
            None => Err(Error::Poisoned { what: "serve.scheduler" }),
        }
    }

    fn stop_workers(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Workers block in two places. Sever live connections so any
        // worker parked mid-`read_frame` gets EOF and returns to its
        // loop; then one wake-up connection per worker so each blocked
        // accept returns once, sees the flag, and exits.
        self.conns.sever_all();
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServeServer {
    fn drop(&mut self) {
        if self.service.is_some() {
            self.stop_workers();
            drop(self.service.take());
        }
    }
}

fn worker_loop(
    listener: &TcpListener,
    handle: &ServeHandle,
    stop: &AtomicBool,
    conns: &ConnTable,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Connection errors only drop that connection; the worker goes
        // back to accepting.
        let slot = conns.register(&stream);
        let _ = serve_connection(stream, handle);
        if let Some(slot) = slot {
            conns.deregister(slot);
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Serve one connection until the peer closes or errors.
///
/// Two frame kinds share the connection: query payloads go through the
/// scheduler queue, stats payloads (leading magic `0xFF`, see
/// [`crate::stats`]) are answered directly from the worker's metrics
/// handle — deliberately *bypassing* admission, so the plane stays
/// observable while the queue is refusing queries with `Overloaded`.
fn serve_connection(stream: TcpStream, handle: &ServeHandle) -> std::io::Result<()> {
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        if crate::stats::is_stats_request(&payload) {
            let frame = match crate::stats::decode_stats_request(&payload) {
                Ok(()) => handle.stats().encode(),
                Err(e) => encode_response(&Err(e)),
            };
            write_frame(&mut writer, &frame)?;
            continue;
        }
        let result = match QueryRequest::decode(&payload) {
            Ok(req) => handle.query(req),
            Err(e) => Err(e),
        };
        write_frame(&mut writer, &encode_response(&result))?;
    }
    Ok(())
}

//! The TCP front door: a small accept pool over a [`QueryService`].
//!
//! Workers share the listener (each holds a `try_clone`) and handle one
//! connection at a time, frame by frame: decode a
//! [`QueryRequest`](crate::QueryRequest), push it through the shared
//! [`ServeHandle`], write the response frame. Because every worker
//! funnels into the same scheduler queue, concurrent connections land
//! in the same epochs — network concurrency is precisely what creates
//! scan sharing.
//!
//! Shutdown is cooperative and port-exact: set the stop flag, sever
//! every live connection (so workers blocked mid-`read_frame` return),
//! then self-connect once per worker so every blocking `accept` wakes,
//! observes the flag, and exits; finally the scheduler drains and the
//! engine comes back out for artifact emission.

use crate::engine::{QueryService, ServeEngine, ServeHandle};
use crate::request::QueryRequest;
use crate::wire::{encode_response, read_frame, write_frame};
use std::io::BufWriter;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// Live-connection registry: a slot per in-flight connection, holding a
/// `try_clone` of the accepted stream so shutdown can sever it even
/// while the owning worker is blocked reading the next frame.
#[derive(Default)]
struct ConnTable(Mutex<Vec<Option<TcpStream>>>);

impl ConnTable {
    fn register(&self, stream: &TcpStream) -> Option<usize> {
        let clone = stream.try_clone().ok()?;
        let mut slots = self.0.lock().expect("conn table lock");
        if let Some(i) = slots.iter().position(Option::is_none) {
            slots[i] = Some(clone);
            Some(i)
        } else {
            slots.push(Some(clone));
            Some(slots.len() - 1)
        }
    }

    fn deregister(&self, slot: usize) {
        self.0.lock().expect("conn table lock")[slot] = None;
    }

    fn sever_all(&self) {
        for conn in self.0.lock().expect("conn table lock").iter().flatten() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

/// A running TCP query server.
pub struct ServeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<ConnTable>,
    workers: Vec<thread::JoinHandle<()>>,
    service: Option<QueryService>,
}

impl ServeServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve
    /// `engine` with `workers` accept threads (clamped to at least 1)
    /// behind a queue bounded at `queue_limit`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: ServeEngine,
        workers: usize,
        queue_limit: usize,
    ) -> std::io::Result<ServeServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let service = QueryService::start(engine, queue_limit);
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(ConnTable::default());
        let workers = (0..workers.max(1))
            .map(|i| {
                let listener = listener.try_clone()?;
                let handle = service.handle();
                let stop = Arc::clone(&stop);
                let conns = Arc::clone(&conns);
                Ok(thread::Builder::new()
                    .name(format!("conncar-serve-worker-{i}"))
                    .spawn(move || worker_loop(&listener, &handle, &stop, &conns))
                    .expect("spawn worker thread"))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ServeServer {
            addr: local,
            stop,
            conns,
            workers,
            service: Some(service),
        })
    }

    /// The bound address (resolved port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, join the workers, drain the scheduler, and
    /// return the engine with its counters and cache intact.
    pub fn shutdown(mut self) -> ServeEngine {
        self.stop_workers();
        self.service
            .take()
            .expect("service running")
            .shutdown()
    }

    fn stop_workers(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Workers block in two places. Sever live connections so any
        // worker parked mid-`read_frame` gets EOF and returns to its
        // loop; then one wake-up connection per worker so each blocked
        // accept returns once, sees the flag, and exits.
        self.conns.sever_all();
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServeServer {
    fn drop(&mut self) {
        if self.service.is_some() {
            self.stop_workers();
            drop(self.service.take());
        }
    }
}

fn worker_loop(
    listener: &TcpListener,
    handle: &ServeHandle,
    stop: &AtomicBool,
    conns: &ConnTable,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Connection errors only drop that connection; the worker goes
        // back to accepting.
        let slot = conns.register(&stream);
        let _ = serve_connection(stream, handle);
        if let Some(slot) = slot {
            conns.deregister(slot);
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Serve one connection until the peer closes or errors.
fn serve_connection(stream: TcpStream, handle: &ServeHandle) -> std::io::Result<()> {
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        let result = match QueryRequest::decode(&payload) {
            Ok(req) => handle.query(req),
            Err(e) => Err(e),
        };
        write_frame(&mut writer, &encode_response(&result))?;
    }
    Ok(())
}

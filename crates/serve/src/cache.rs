//! Generation-keyed LRU result cache.
//!
//! Keys are `(request digest, store generation)`: the digest is the
//! canonical-encoding FNV-64 of the request
//! ([`crate::QueryRequest::digest`]), the generation is the store
//! build's process-unique counter
//! ([`conncar_store::CdrStore::generation`]). A rebuilt store gets a
//! fresh generation, so every entry computed against the old build
//! misses naturally — no invalidation walk, no epoch bookkeeping in
//! the cache itself.
//!
//! Recency is a logical **tick**, not wall time: every touch stamps the
//! entry with the next value of a monotonically increasing counter, and
//! eviction removes the entry with the smallest stamp. Ticks make the
//! eviction order a pure function of the access sequence — the same
//! workload always evicts the same keys in the same order, which the
//! cache tests pin and `SERVE_OBS.json` relies on.

use crate::request::QueryValue;
use conncar_store::QueryStats;
use std::collections::BTreeMap;

/// Cache key: `(request digest, store generation)`.
pub type CacheKey = (u64, u64);

#[derive(Debug, Clone)]
struct CacheEntry {
    value: QueryValue,
    stats: QueryStats,
    last_used: u64,
}

/// A bounded LRU cache of query results (see module docs). Capacity 0
/// disables caching entirely.
#[derive(Debug, Clone)]
pub struct ResultCache {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<CacheKey, CacheEntry>,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` results.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            tick: 0,
            entries: BTreeMap::new(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a result, refreshing its recency on hit. The returned
    /// stats are what the *original* computation cost — a hit costs no
    /// scan, and the engine reports it that way (`cache_hit` flag).
    pub fn get(&mut self, key: CacheKey) -> Option<(QueryValue, QueryStats)> {
        let entry = self.entries.get_mut(&key)?;
        self.tick += 1;
        entry.last_used = self.tick;
        Some((entry.value.clone(), entry.stats))
    }

    /// Insert a result, evicting the least-recently-used entry if the
    /// cache is full. Inserting an already-present key refreshes both
    /// the value and the recency. Returns the evicted key, if any, so
    /// the engine can account `serve.cache.evict` and post the flight
    /// event without re-deriving the LRU choice.
    pub fn insert(
        &mut self,
        key: CacheKey,
        value: QueryValue,
        stats: QueryStats,
    ) -> Option<CacheKey> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        let mut evicted = None;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // Ticks are unique, so the minimum is unique: deterministic
            // eviction for any access history.
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty cache");
            self.entries.remove(&lru);
            evicted = Some(lru);
        }
        self.entries.insert(
            key,
            CacheEntry {
                value,
                stats,
                last_used: tick,
            },
        );
        evicted
    }

    /// Keys currently cached, in key order (tests and introspection).
    pub fn keys(&self) -> Vec<CacheKey> {
        self.entries.keys().copied().collect()
    }

    /// Drop every entry (recency ticks keep advancing).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(n: u64) -> QueryValue {
        QueryValue::Count(n)
    }

    #[test]
    fn hit_returns_value_and_stats() {
        let mut cache = ResultCache::new(4);
        let stats = QueryStats {
            rows_scanned: 10,
            shards_scanned: 2,
            ..QueryStats::default()
        };
        cache.insert((1, 1), val(5), stats);
        let (v, s) = cache.get((1, 1)).expect("hit");
        assert_eq!(v, val(5));
        assert_eq!(s.rows_scanned, 10);
        assert_eq!(s.shards_scanned, 2);
    }

    #[test]
    fn generation_bump_misses() {
        let mut cache = ResultCache::new(4);
        cache.insert((1, 1), val(5), QueryStats::default());
        assert!(cache.get((1, 1)).is_some());
        assert!(cache.get((1, 2)).is_none(), "new generation must miss");
    }

    #[test]
    fn eviction_is_lru_and_deterministic() {
        let mut cache = ResultCache::new(2);
        cache.insert((1, 1), val(1), QueryStats::default());
        cache.insert((2, 1), val(2), QueryStats::default());
        // Touch key 1 so key 2 is now least recently used.
        assert!(cache.get((1, 1)).is_some());
        assert_eq!(cache.insert((3, 1), val(3), QueryStats::default()), Some((2, 1)));
        assert_eq!(cache.keys(), vec![(1, 1), (3, 1)]);
        assert!(cache.get((2, 1)).is_none(), "LRU key must be evicted");
        // Same sequence, same evictions: replay it.
        let mut replay = ResultCache::new(2);
        replay.insert((1, 1), val(1), QueryStats::default());
        replay.insert((2, 1), val(2), QueryStats::default());
        assert!(replay.get((1, 1)).is_some());
        replay.insert((3, 1), val(3), QueryStats::default());
        assert_eq!(replay.keys(), cache.keys());
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut cache = ResultCache::new(2);
        cache.insert((1, 1), val(1), QueryStats::default());
        cache.insert((2, 1), val(2), QueryStats::default());
        cache.insert((1, 1), val(10), QueryStats::default());
        cache.insert((3, 1), val(3), QueryStats::default());
        // Key 2 was LRU after key 1's refresh.
        assert_eq!(cache.keys(), vec![(1, 1), (3, 1)]);
        assert_eq!(cache.get((1, 1)).unwrap().0, val(10));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResultCache::new(0);
        cache.insert((1, 1), val(1), QueryStats::default());
        assert!(cache.is_empty());
        assert!(cache.get((1, 1)).is_none());
    }
}

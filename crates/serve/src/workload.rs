//! Deterministic synthetic workloads for the load generator.
//!
//! The generator is a pure function of `(spec, targets)`: it draws from
//! its own splitmix64 stream (no `rand`, no ambient entropy), so the
//! same seed always produces the same request sequence — the property
//! the double-run `SERVE_OBS.json` identity check in the serve bench
//! rests on.
//!
//! The mix models a carrier dashboard: mostly cheap point lookups
//! (one car's rows or count — one shard after pruning), a steady
//! stream of scan-shaped analytics (cell counts, per-car folds,
//! histograms — every shard), and a configurable fraction of repeats
//! of earlier queries (dashboards refresh), which is what exercises
//! the result cache.

use crate::request::{Aggregation, QueryRequest};
use conncar_store::{CdrStore, Filter};
use conncar_types::{CarId, CellId, StudyPeriod, Timestamp};
use std::collections::BTreeSet;

/// Workload shape knobs.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of requests to generate.
    pub queries: usize,
    /// Seed of the splitmix64 stream.
    pub seed: u64,
    /// Percent (0..=100) of requests that repeat an earlier request.
    pub repeat_pct: u8,
}

impl Default for WorkloadSpec {
    fn default() -> WorkloadSpec {
        WorkloadSpec {
            queries: 1000,
            seed: 0xC0CA_C01A,
            repeat_pct: 30,
        }
    }
}

/// Query targets drawn from the served data.
#[derive(Debug, Clone)]
pub struct WorkloadTargets {
    /// Cars to point-query (sorted, deduplicated).
    pub cars: Vec<CarId>,
    /// Cells to scan for (sorted, deduplicated).
    pub cells: Vec<CellId>,
    /// The study period (window bounds, histogram bin limit).
    pub period: StudyPeriod,
}

impl WorkloadTargets {
    /// Collect targets from a built store: every car in the car
    /// directories, every distinct cell in the columns.
    pub fn from_store(store: &CdrStore) -> WorkloadTargets {
        let mut cars = Vec::new();
        let mut cells = BTreeSet::new();
        for shard in store.shards() {
            for g in shard.car_groups() {
                cars.push(g.car);
            }
            cells.extend(shard.cell_postings().iter().map(|p| p.cell));
        }
        cars.sort_unstable();
        WorkloadTargets {
            cars,
            cells: cells.into_iter().collect(),
            period: store.period(),
        }
    }
}

/// splitmix64: the workspace's standard deterministic stream (same
/// finalizer the store uses for shard routing).
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// Generate the request sequence (see module docs). Panics if the
/// target car/cell lists are empty — a workload needs data to aim at.
pub fn generate(spec: &WorkloadSpec, targets: &WorkloadTargets) -> Vec<QueryRequest> {
    assert!(
        !targets.cars.is_empty() && !targets.cells.is_empty(),
        "workload targets must be non-empty"
    );
    let mut rng = Stream(spec.seed);
    let total_secs = u64::from(targets.period.days()) * 86_400;
    let bins = targets.period.total_bins();
    let mut history: Vec<QueryRequest> = Vec::new();
    let mut out = Vec::with_capacity(spec.queries);
    for _ in 0..spec.queries {
        // Dashboards refresh: repeat an earlier request with
        // probability repeat_pct (once there is history to repeat).
        if !history.is_empty() && rng.below(100) < u64::from(spec.repeat_pct.min(100)) {
            let again = rng.pick(&history).clone();
            out.push(again);
            continue;
        }
        let req = match rng.below(100) {
            // Point lookups: one car, one shard after pruning.
            0..=24 => QueryRequest::new(
                Filter::all().car(*rng.pick(&targets.cars)),
                Aggregation::Rows,
            ),
            25..=44 => {
                let (ws, we) = window(&mut rng, total_secs);
                QueryRequest::new(
                    Filter::all().car(*rng.pick(&targets.cars)).window(ws, we),
                    Aggregation::Count,
                )
            }
            // Scan-shaped analytics: all shards, where sharing pays.
            45..=64 => QueryRequest::new(
                Filter::all().cell(*rng.pick(&targets.cells)),
                Aggregation::Count,
            ),
            65..=79 => {
                let (ws, we) = window(&mut rng, total_secs);
                QueryRequest::new(Filter::all().window(ws, we), Aggregation::PerCarSeconds)
            }
            80..=89 => QueryRequest::new(
                Filter::all().cell(*rng.pick(&targets.cells)),
                Aggregation::CellBinHistogram { bin_limit: bins },
            ),
            _ => QueryRequest::new(Filter::all(), Aggregation::Count),
        };
        history.push(req.clone());
        out.push(req);
    }
    out
}

fn window(rng: &mut Stream, total_secs: u64) -> (Timestamp, Timestamp) {
    let span = total_secs.max(2);
    let start = rng.below(span - 1);
    let len = 1 + rng.below(span - start - 1).max(1);
    (
        Timestamp::from_secs(start),
        Timestamp::from_secs((start + len).min(span)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_cdr::{CdrDataset, CdrRecord};
    use conncar_types::{BaseStationId, Carrier, DayOfWeek};

    fn targets() -> WorkloadTargets {
        let records = (0..300)
            .map(|i| CdrRecord {
                car: CarId(i % 19),
                cell: CellId::new(BaseStationId(i % 6), 0, Carrier::C3),
                start: Timestamp::from_secs(u64::from(i) * 800),
                end: Timestamp::from_secs(u64::from(i) * 800 + 90),
            })
            .collect();
        let ds = CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records);
        WorkloadTargets::from_store(&CdrStore::build(&ds, 4))
    }

    #[test]
    fn targets_cover_the_data() {
        let t = targets();
        assert_eq!(t.cars.len(), 19);
        assert_eq!(t.cells.len(), 6);
        assert!(t.cars.windows(2).all(|w| w[0] < w[1]));
        assert!(t.cells.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn same_seed_same_workload() {
        let t = targets();
        let spec = WorkloadSpec {
            queries: 200,
            ..WorkloadSpec::default()
        };
        let a = generate(&spec, &t);
        let b = generate(&spec, &t);
        assert_eq!(a, b);
        let other = generate(
            &WorkloadSpec {
                seed: spec.seed + 1,
                ..spec
            },
            &t,
        );
        assert_ne!(a, other, "different seeds should differ");
    }

    #[test]
    fn every_request_is_valid_and_mixed() {
        let t = targets();
        let reqs = generate(
            &WorkloadSpec {
                queries: 500,
                ..WorkloadSpec::default()
            },
            &t,
        );
        assert_eq!(reqs.len(), 500);
        let mut aggs = BTreeSet::new();
        for r in &reqs {
            r.validate().expect("generated requests must be valid");
            aggs.insert(match r.agg {
                Aggregation::Count => 0,
                Aggregation::Rows => 1,
                Aggregation::PerCarSeconds => 2,
                Aggregation::CellBinHistogram { .. } => 3,
            });
        }
        assert!(aggs.len() >= 4, "mix should cover the aggregation kinds");
    }

    #[test]
    fn repeats_create_duplicate_digests() {
        let t = targets();
        let reqs = generate(
            &WorkloadSpec {
                queries: 400,
                seed: 7,
                repeat_pct: 40,
            },
            &t,
        );
        let distinct: BTreeSet<u64> = reqs.iter().map(QueryRequest::digest).collect();
        assert!(
            distinct.len() < reqs.len(),
            "repeat_pct=40 must produce repeated digests"
        );
        let none = generate(
            &WorkloadSpec {
                queries: 50,
                seed: 7,
                repeat_pct: 0,
            },
            &t,
        );
        assert_eq!(none.len(), 50);
    }
}

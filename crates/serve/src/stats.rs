//! The `StatsRequest` frame and the [`ServeSnapshot`] it returns.
//!
//! A stats request payload is two bytes — [`STATS_REQUEST_MAGIC`] then
//! [`STATS_VERSION`]. The magic byte `0xFF` can never open a
//! [`crate::QueryRequest`] (whose canonical encoding starts with the
//! version byte `1`), so the server disambiguates the two frame kinds
//! on the first byte without any outer envelope — old clients keep
//! working unchanged. The response payload is the canonical
//! [`ServeSnapshot`] encoding.
//!
//! The snapshot is **versioned** (leading byte, bump on layout change)
//! and **canonical**: counters, gauges and histograms serialize in
//! ascending key order (the registry is sorted at construction), events
//! in sequence order, all integers fixed-width little-endian. Identical
//! plane states therefore encode to identical bytes — the determinism
//! contract the `metrics-gate` CI job pins under `NullClock`.
//!
//! [`render`] turns a snapshot into the deterministic text dashboard
//! `conncar stats` prints once and `conncar top` repaints per tick;
//! [`run_top`] is the injected-clock-driven polling loop behind `top`.

use crate::metrics::event;
use crate::request::Cursor;
use crate::wire::{put_str, take_str};
use conncar_obs::live::{FlightEvent, HistogramSnapshot, HISTOGRAM_BUCKETS};
use conncar_obs::Clock;
use conncar_types::{Error, Result};
use std::io::Write;

/// Snapshot encoding version (leading byte; bump on layout change).
pub const STATS_VERSION: u8 = 1;

/// First byte of a stats request payload. `0xFF` is reserved: a query
/// payload always starts with its own encoding version (currently 1).
pub const STATS_REQUEST_MAGIC: u8 = 0xFF;

/// The two-byte stats request payload.
pub fn encode_stats_request() -> Vec<u8> {
    vec![STATS_REQUEST_MAGIC, STATS_VERSION]
}

/// Whether a frame payload is a stats request (vs a query).
pub fn is_stats_request(payload: &[u8]) -> bool {
    payload.first() == Some(&STATS_REQUEST_MAGIC)
}

/// Validate a stats request payload.
pub fn decode_stats_request(payload: &[u8]) -> Result<()> {
    match payload {
        [STATS_REQUEST_MAGIC, STATS_VERSION] => Ok(()),
        [STATS_REQUEST_MAGIC, v] => Err(Error::Decode {
            offset: None,
            why: format!("unsupported stats version {v} (want {STATS_VERSION})"),
        }),
        _ => Err(Error::Decode {
            offset: None,
            why: "not a stats request".into(),
        }),
    }
}

/// A versioned, canonically-encoded copy of one engine's live metrics
/// plane (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSnapshot {
    /// Encoding version ([`STATS_VERSION`] when produced locally).
    pub version: u8,
    /// The served store's build generation (process-unique; see
    /// [`ServeSnapshot::normalized`] for the double-run comparison
    /// contract).
    pub generation: u64,
    /// Counters in ascending key order.
    pub counters: Vec<(String, u64)>,
    /// Gauges in ascending key order.
    pub gauges: Vec<(String, u64)>,
    /// Histograms in ascending key order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Flight-recorder tail, oldest first.
    pub events: Vec<FlightEvent>,
}

impl ServeSnapshot {
    /// Counter value by key (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Gauge value by key (0 when absent).
    pub fn gauge(&self, key: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Histogram by key.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, h)| h)
    }

    /// Copy with the generation zeroed. The generation counter is
    /// process-unique by design (each store build bumps it), so two
    /// builds *within one process* legitimately differ there; every
    /// other byte of the encoding must still match for identical
    /// workloads under `NullClock`, which is what double-run identity
    /// checks compare after normalizing.
    pub fn normalized(&self) -> ServeSnapshot {
        let mut s = self.clone();
        s.generation = 0;
        s
    }

    /// Canonical byte encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![self.version];
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for (k, v) in &self.counters {
            put_str(&mut out, k);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.gauges.len() as u32).to_le_bytes());
        for (k, v) in &self.gauges {
            put_str(&mut out, k);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.histograms.len() as u32).to_le_bytes());
        for (k, h) in &self.histograms {
            put_str(&mut out, k);
            out.extend_from_slice(&h.count.to_le_bytes());
            out.extend_from_slice(&h.sum.to_le_bytes());
            out.extend_from_slice(&h.max.to_le_bytes());
            let nonzero = h.buckets.iter().filter(|b| **b != 0).count();
            out.extend_from_slice(&(nonzero as u32).to_le_bytes());
            for (i, b) in h.buckets.iter().enumerate() {
                if *b != 0 {
                    out.push(i as u8);
                    out.extend_from_slice(&b.to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        for e in &self.events {
            out.extend_from_slice(&e.seq.to_le_bytes());
            out.extend_from_slice(&e.at_ns.to_le_bytes());
            out.push(e.code);
            out.extend_from_slice(&e.a.to_le_bytes());
            out.extend_from_slice(&e.b.to_le_bytes());
        }
        out
    }

    /// Decode a canonical encoding. Wire-facing: every claimed length
    /// is bounds-checked by the cursor before any copy, and bucket
    /// indexes outside the histogram are rejected typed.
    pub fn decode(bytes: &[u8]) -> Result<ServeSnapshot> {
        let mut c = Cursor::new(bytes);
        let version = c.u8()?;
        if version != STATS_VERSION {
            return c.bad(format!(
                "unsupported snapshot version {version} (want {STATS_VERSION})"
            ));
        }
        let generation = c.u64()?;
        let n_counters = c.u32()?;
        let mut counters = Vec::new();
        for _ in 0..n_counters {
            let k = take_str(&mut c)?;
            counters.push((k, c.u64()?));
        }
        let n_gauges = c.u32()?;
        let mut gauges = Vec::new();
        for _ in 0..n_gauges {
            let k = take_str(&mut c)?;
            gauges.push((k, c.u64()?));
        }
        let n_hists = c.u32()?;
        let mut histograms = Vec::new();
        for _ in 0..n_hists {
            let k = take_str(&mut c)?;
            let mut h = HistogramSnapshot::empty();
            h.count = c.u64()?;
            h.sum = c.u64()?;
            h.max = c.u64()?;
            let nonzero = c.u32()?;
            for _ in 0..nonzero {
                let idx = c.u8()?;
                let count = c.u64()?;
                match h.buckets.get_mut(usize::from(idx)) {
                    Some(slot) => *slot = count,
                    None => {
                        return c.bad(format!(
                            "bucket index {idx} outside 0..{HISTOGRAM_BUCKETS}"
                        ))
                    }
                }
            }
            histograms.push((k, h));
        }
        let n_events = c.u32()?;
        let mut events = Vec::new();
        for _ in 0..n_events {
            events.push(FlightEvent {
                seq: c.u64()?,
                at_ns: c.u64()?,
                code: c.u8()?,
                a: c.u64()?,
                b: c.u64()?,
            });
        }
        c.finish()?;
        Ok(ServeSnapshot {
            version,
            generation,
            counters,
            gauges,
            histograms,
            events,
        })
    }
}

/// Render `p` permille as a percent string with one decimal (`"45.0%"`).
fn pct(p: u64) -> String {
    format!("{}.{}%", p / 10, p % 10)
}

/// Render a snapshot as the deterministic text dashboard. Identical
/// snapshots render to identical text; key order is the encoding's.
pub fn render(snap: &ServeSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "conncar-serve snapshot v{} · generation {}\n",
        snap.version, snap.generation
    ));
    out.push_str(&format!(
        "queue_depth {} · last_epoch {} · cache_hit {} · coalesce {}\n",
        snap.gauge("serve.live.queue_depth"),
        snap.gauge("serve.live.last_epoch_size"),
        pct(snap.gauge("serve.live.cache_hit_permille")),
        pct(snap.gauge("serve.live.coalesce_permille")),
    ));
    out.push_str("counters\n");
    for (k, v) in &snap.counters {
        out.push_str(&format!("  {k:<34} {v:>12}\n"));
    }
    out.push_str(&format!(
        "latency_ns {:>29} {:>12} {:>12} {:>12} {:>12}\n",
        "count", "p50", "p95", "p99", "max"
    ));
    for (k, h) in &snap.histograms {
        out.push_str(&format!(
            "  {k:<34} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
            h.count,
            h.p50(),
            h.p95(),
            h.p99(),
            h.max
        ));
    }
    out.push_str(&format!("flight tail ({} events)\n", snap.events.len()));
    for e in &snap.events {
        out.push_str(&format!(
            "  #{:<6} at {:>12}ns {:<12} a={} b={}\n",
            e.seq,
            e.at_ns,
            event::name(e.code),
            e.a,
            e.b
        ));
    }
    out
}

/// The polling loop behind `conncar top`: fetch a snapshot, render it,
/// then sleep out the remainder of `interval_ns` as measured by the
/// *injected* clock (a `NullClock` measures zero elapsed, so tests and
/// replay drive ticks purely by count). `ticks == 0` polls until
/// `fetch` fails.
pub fn run_top<F>(
    clock: &dyn Clock,
    interval_ns: u64,
    ticks: u64,
    mut fetch: F,
    out: &mut dyn Write,
) -> Result<()>
where
    F: FnMut() -> Result<ServeSnapshot>,
{
    let mut tick = 0u64;
    loop {
        let t0 = clock.now_nanos();
        let snap = fetch()?;
        writeln!(out, "── tick {tick} ──")?;
        out.write_all(render(&snap).as_bytes())?;
        tick = tick.saturating_add(1);
        if ticks != 0 && tick >= ticks {
            return Ok(());
        }
        let elapsed = clock.now_nanos().saturating_sub(t0);
        let remainder = interval_ns.saturating_sub(elapsed);
        if remainder > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(remainder));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_obs::NullClock;

    fn sample() -> ServeSnapshot {
        let mut h = HistogramSnapshot::empty();
        for v in [1u64, 3, 900, 4000] {
            let i = conncar_obs::live::bucket_index(v);
            h.buckets[i] += 1;
            h.count += 1;
            h.sum += v;
            h.max = h.max.max(v);
        }
        ServeSnapshot {
            version: STATS_VERSION,
            generation: 7,
            counters: vec![
                ("serve.live.cache_hits".into(), 3),
                ("serve.live.queries".into(), 10),
            ],
            gauges: vec![
                ("serve.live.cache_hit_permille".into(), 300),
                ("serve.live.queue_depth".into(), 2),
            ],
            histograms: vec![("serve.live.e2e_ns".into(), h)],
            events: vec![FlightEvent {
                seq: 0,
                at_ns: 5,
                code: event::ADMIT,
                a: 0xBEEF,
                b: 0,
            }],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = sample();
        let bytes = snap.encode();
        let back = ServeSnapshot::decode(&bytes).expect("decode");
        assert_eq!(back, snap);
        // Canonical: re-encoding is byte-identical.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn version_mismatch_rejects() {
        let mut bytes = sample().encode();
        bytes[0] = 99;
        assert!(ServeSnapshot::decode(&bytes).is_err());
    }

    #[test]
    fn truncation_rejects_typed() {
        let bytes = sample().encode();
        for cut in [1usize, 10, bytes.len() - 1] {
            assert!(
                ServeSnapshot::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn stats_request_disambiguates_from_queries() {
        let req = encode_stats_request();
        assert!(is_stats_request(&req));
        assert!(decode_stats_request(&req).is_ok());
        assert!(!is_stats_request(&[crate::request::ENCODING_VERSION]));
        assert!(decode_stats_request(&[STATS_REQUEST_MAGIC, 9]).is_err());
    }

    #[test]
    fn render_is_deterministic_and_readable() {
        let snap = sample();
        let a = render(&snap);
        let b = render(&snap);
        assert_eq!(a, b);
        assert!(a.contains("cache_hit 30.0%"));
        assert!(a.contains("serve.live.queries"));
        assert!(a.contains("admit"));
    }

    #[test]
    fn top_ticks_are_count_driven_under_null_clock() {
        let snap = sample();
        let mut out = Vec::new();
        run_top(&NullClock, 0, 3, || Ok(snap.clone()), &mut out).expect("top");
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(text.matches("── tick").count(), 3);
        assert!(text.contains("tick 2"));
    }
}

//! The query engine: admission, epoch batching, shared scans, caching.
//!
//! [`ServeEngine`] is the single-threaded core. A batch of admitted
//! requests flows through four deterministic steps:
//!
//! 1. **validate** — [`crate::QueryRequest::validate`] rejects filters
//!    that can never match with a typed error;
//! 2. **cache probe** — `(digest, store generation)` lookups against
//!    the [`ResultCache`];
//! 3. **coalesce** — identical digests within the batch collapse to one
//!    execution (every copy gets the same result);
//! 4. **epochs** — remaining unique misses are split FIFO into epochs
//!    of at most `epoch_max` queries, and each epoch compiles into one
//!    [`SharedScan`]: one physical pass over the union of the queries'
//!    shard plans, per-query results byte-identical to standalone
//!    execution (the scheduler property tests pin this).
//!
//! Everything the engine does is counted in its
//! [`conncar_obs::CounterRegistry`] under `serve.*` — queries, hits,
//! misses, coalesced copies, epochs, and the physical vs would-have-been
//! (naive) shard scans whose ratio is the scan-sharing win the bench
//! gate asserts. Counters are pure functions of the admitted request
//! sequence and the store, so a fixed workload yields a byte-identical
//! `SERVE_OBS.json`.
//!
//! [`QueryService`] wraps the engine in a scheduler thread behind a
//! bounded FIFO queue: concurrent submitters enqueue, the scheduler
//! drains up to `epoch_max` requests at a time (so concurrency is what
//! *creates* sharing), and admission beyond the queue bound fails fast
//! with [`Error::Overloaded`].

use crate::cache::ResultCache;
use crate::metrics::{event, MetricsConfig, ServeMetrics};
use crate::request::{histogram_from_triples, Aggregation, QueryRequest, QueryValue};
use conncar_cdr::CdrRecord;
use conncar_obs::CounterRegistry;
use conncar_store::{CdrStore, FolderHandle, QueryStats, SharedOutputs, SharedScan};
use conncar_types::{CarId, CellId, Error, Result};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// Counter keys the engine accounts under.
pub mod keys {
    /// Requests admitted (valid or not).
    pub const QUERIES: &str = "serve.queries";
    /// Requests rejected by validation.
    pub const REJECTED: &str = "serve.rejected";
    /// Results served from the cache.
    pub const CACHE_HITS: &str = "serve.cache_hits";
    /// Results that had to be computed.
    pub const CACHE_MISSES: &str = "serve.cache_misses";
    /// Duplicate in-batch requests collapsed onto one execution.
    pub const COALESCED: &str = "serve.coalesced";
    /// Shared-scan epochs executed.
    pub const EPOCHS: &str = "serve.epochs";
    /// Shard scans the shared passes physically performed.
    pub const PHYSICAL_SHARD_SCANS: &str = "serve.physical_shard_scans";
    /// Shard scans naive per-query execution would have performed.
    pub const NAIVE_SHARD_SCANS: &str = "serve.naive_shard_scans";
    /// Rows the shared passes physically read.
    pub const PHYSICAL_ROWS_SCANNED: &str = "serve.physical_rows_scanned";
    /// Cache-layer accounting (per-operation namespace, distinct from
    /// the legacy `serve.cache_hits`/`serve.cache_misses` pair so
    /// `sum_prefix("serve.cache.")` groups exactly the cache ops).
    pub const CACHE_HIT: &str = "serve.cache.hit";
    /// Cache probes that missed.
    pub const CACHE_MISS: &str = "serve.cache.miss";
    /// LRU entries evicted by inserts.
    pub const CACHE_EVICT: &str = "serve.cache.evict";
    /// Computed results inserted into the cache.
    pub const CACHE_INSERT: &str = "serve.cache.insert";
}

/// One answered query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The result.
    pub value: QueryValue,
    /// What computing it cost (the original computation's cost when
    /// served from cache; `scan_nanos` is zero for shared-scan results
    /// — wall time belongs to the epoch, not any one query).
    pub stats: QueryStats,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
}

/// The single-threaded query engine (see module docs).
pub struct ServeEngine {
    store: Arc<CdrStore>,
    cache: ResultCache,
    epoch_max: usize,
    counters: CounterRegistry,
    metrics: Arc<ServeMetrics>,
}

impl ServeEngine {
    /// Build an engine over `store` with a result cache of
    /// `cache_capacity` entries and epochs of at most `epoch_max`
    /// queries (clamped to at least 1). The live metrics plane is on by
    /// default and shares the store's injected clock; use
    /// [`ServeEngine::with_metrics`] to tune or strip it.
    pub fn new(store: Arc<CdrStore>, cache_capacity: usize, epoch_max: usize) -> ServeEngine {
        ServeEngine::with_metrics(store, cache_capacity, epoch_max, MetricsConfig::default())
    }

    /// [`ServeEngine::new`] with explicit live-metrics configuration.
    pub fn with_metrics(
        store: Arc<CdrStore>,
        cache_capacity: usize,
        epoch_max: usize,
        cfg: MetricsConfig,
    ) -> ServeEngine {
        let metrics = Arc::new(ServeMetrics::new(store.shared_clock(), cfg));
        ServeEngine {
            store,
            cache: ResultCache::new(cache_capacity),
            epoch_max: epoch_max.max(1),
            counters: CounterRegistry::new(),
            metrics,
        }
    }

    /// The store being served.
    pub fn store(&self) -> &CdrStore {
        &self.store
    }

    /// Largest number of queries fused into one shared scan.
    pub fn epoch_max(&self) -> usize {
        self.epoch_max
    }

    /// Everything the engine has counted so far.
    pub fn counters(&self) -> &CounterRegistry {
        &self.counters
    }

    /// The result cache (introspection and tests).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The live metrics plane (shared with the scheduler handle and the
    /// TCP workers answering stats frames).
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Snapshot the live metrics plane against this engine's store
    /// generation.
    pub fn snapshot(&self) -> crate::stats::ServeSnapshot {
        self.metrics.snapshot(self.store.generation())
    }

    /// Serve one request (a batch of one).
    pub fn submit(&mut self, req: &QueryRequest) -> Result<QueryResponse> {
        self.submit_batch(std::slice::from_ref(req))
            .pop()
            .unwrap_or_else(|| Err(Error::Io("submit_batch returned no response".into())))
    }

    /// Serve a batch of concurrently admitted requests, in admission
    /// order. Each request gets its own `Result`; an invalid filter
    /// rejects that request only.
    pub fn submit_batch(&mut self, reqs: &[QueryRequest]) -> Vec<Result<QueryResponse>> {
        let generation = self.store.generation();
        // One flag read gates every live-metrics touch: the stripped
        // plane costs exactly these branches (the overhead ceiling the
        // bench's paired run measures).
        let live = self.metrics.enabled();
        let t_batch = self.metrics.now();
        let mut out: Vec<Option<Result<QueryResponse>>> = reqs.iter().map(|_| None).collect();
        fn fill(out: &mut [Option<Result<QueryResponse>>], i: usize, r: Result<QueryResponse>) {
            if let Some(slot) = out.get_mut(i) {
                *slot = Some(r);
            }
        }
        // digest -> indices awaiting that execution, insertion-ordered
        // by first appearance (FIFO epochs).
        let mut pending: Vec<(u64, QueryRequest)> = Vec::new();
        let mut waiters: BTreeMap<u64, Vec<usize>> = BTreeMap::new();

        for (i, req) in reqs.iter().enumerate() {
            self.counters.incr(keys::QUERIES);
            if live {
                self.metrics.queries.incr();
            }
            if let Err(e) = req.validate() {
                self.counters.incr(keys::REJECTED);
                if live {
                    self.metrics.rejected.incr();
                }
                fill(&mut out, i, Err(e));
                continue;
            }
            let digest = req.digest();
            if live {
                self.metrics.flight().post(t_batch, event::ADMIT, digest, 0);
            }
            let t_probe = self.metrics.now();
            let probe = self.cache.get((digest, generation));
            if live {
                self.metrics
                    .cache_lookup_ns
                    .record(self.metrics.now().saturating_sub(t_probe));
            }
            if let Some((value, stats)) = probe {
                self.counters.incr(keys::CACHE_HITS);
                self.counters.incr(keys::CACHE_HIT);
                // Naive execution would have scanned for this request
                // again; the cache (not the scheduler) saved it.
                self.counters
                    .add(keys::NAIVE_SHARD_SCANS, u64::from(stats.shards_scanned));
                if live {
                    self.metrics.cache_hits.incr();
                    self.metrics.flight().post(t_batch, event::CACHE_HIT, digest, 0);
                    let e2e = self.metrics.now().saturating_sub(t_batch);
                    self.metrics.observe_e2e(t_batch, digest, e2e);
                }
                fill(
                    &mut out,
                    i,
                    Ok(QueryResponse {
                        value,
                        stats,
                        cache_hit: true,
                    }),
                );
                continue;
            }
            self.counters.incr(keys::CACHE_MISSES);
            self.counters.incr(keys::CACHE_MISS);
            if live {
                self.metrics.cache_misses.incr();
                self.metrics.flight().post(t_batch, event::CACHE_MISS, digest, 0);
            }
            match waiters.get_mut(&digest) {
                Some(idxs) => {
                    self.counters.incr(keys::COALESCED);
                    if live {
                        self.metrics.coalesced.incr();
                        self.metrics
                            .flight()
                            .post(t_batch, event::COALESCE, digest, idxs.len() as u64);
                    }
                    idxs.push(i);
                }
                None => {
                    waiters.insert(digest, vec![i]);
                    pending.push((digest, req.clone()));
                }
            }
        }

        for epoch in pending.chunks(self.epoch_max) {
            self.counters.incr(keys::EPOCHS);
            let t_epoch = self.metrics.now();
            if live {
                self.metrics.epochs.incr();
                self.metrics.last_epoch_size.set(epoch.len() as u64);
                self.metrics
                    .flight()
                    .post(t_epoch, event::EPOCH_COMPILE, epoch.len() as u64, 0);
            }
            let answers = run_epoch(&self.store, epoch, &mut self.counters);
            let t_done = self.metrics.now();
            if live {
                self.metrics.scan_ns.record(t_done.saturating_sub(t_epoch));
            }
            for ((digest, _), (value, stats)) in epoch.iter().zip(answers) {
                let Some(idxs) = waiters.get(digest) else { continue };
                // Naive execution would have run the scan once per
                // waiting copy.
                self.counters.add(
                    keys::NAIVE_SHARD_SCANS,
                    u64::from(stats.shards_scanned) * idxs.len() as u64,
                );
                let evicted = self
                    .cache
                    .insert((*digest, generation), value.clone(), stats);
                if self.cache.capacity() > 0 {
                    self.counters.incr(keys::CACHE_INSERT);
                    if live {
                        self.metrics.cache_inserts.incr();
                        self.metrics
                            .flight()
                            .post(t_done, event::CACHE_INSERT, *digest, 0);
                    }
                }
                if let Some((evicted_digest, _)) = evicted {
                    self.counters.incr(keys::CACHE_EVICT);
                    if live {
                        self.metrics.cache_evictions.incr();
                        self.metrics
                            .flight()
                            .post(t_done, event::CACHE_EVICT, evicted_digest, 0);
                    }
                }
                for &i in idxs {
                    if live {
                        self.metrics
                            .observe_e2e(t_batch, *digest, t_done.saturating_sub(t_batch));
                    }
                    fill(
                        &mut out,
                        i,
                        Ok(QueryResponse {
                            value: value.clone(),
                            stats,
                            cache_hit: false,
                        }),
                    );
                }
            }
        }

        out.into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| Err(Error::Io("request missed by scheduler".into())))
            })
            .collect()
    }
}

/// Typed claim tickets for one epoch's registered folders.
enum Pending {
    Count(FolderHandle<u64>),
    Rows(FolderHandle<Vec<CdrRecord>>),
    PerCar(FolderHandle<Vec<(CarId, u64)>>),
    Histogram(FolderHandle<Vec<(CellId, u64, CarId)>>),
}

/// Compile one epoch into a [`SharedScan`], run it, and reassemble each
/// query's typed value. Per-query stats come from the scan's
/// attribution; physical pass stats land in `counters`.
fn run_epoch(
    store: &CdrStore,
    epoch: &[(u64, QueryRequest)],
    counters: &mut CounterRegistry,
) -> Vec<(QueryValue, QueryStats)> {
    let mut scan = SharedScan::new(store);
    let handles: Vec<Pending> = epoch
        .iter()
        .map(|(digest, req)| {
            let name = format!("q{digest:016x}");
            register(&mut scan, &name, req)
        })
        .collect();
    let mut outputs = scan.run();
    let pass = outputs.pass_stats();
    counters.add(
        keys::PHYSICAL_SHARD_SCANS,
        u64::from(pass.shards_scanned),
    );
    counters.add(keys::PHYSICAL_ROWS_SCANNED, pass.rows_scanned);
    let stats: Vec<QueryStats> = outputs.query_stats().to_vec();
    handles
        .into_iter()
        .zip(stats)
        .map(|(pending, stats)| (assemble(&mut outputs, pending), stats))
        .collect()
}

/// Register one request's folder on the shared scan. The folders
/// reproduce [`crate::QueryRequest::execute_single`] exactly:
/// the same walk feeds them, and [`assemble`] applies the same final
/// canonical ordering.
fn register(scan: &mut SharedScan<'_>, name: &str, req: &QueryRequest) -> Pending {
    let filter = req.filter.clone();
    match req.agg {
        Aggregation::Count => Pending::Count(scan.add_per_car(
            name,
            filter,
            || 0u64,
            |n, v| *n += v.selected_count() as u64,
            |a, b| a + b,
        )),
        Aggregation::Rows => Pending::Rows(scan.add_per_car(
            name,
            filter,
            Vec::new,
            |acc: &mut Vec<CdrRecord>, v| {
                // CarView guarantees for_each_selected yields indices
                // in-bounds for all three parallel columns.
                v.for_each_selected(|i| {
                    acc.push(CdrRecord {
                        car: v.car,
                        cell: v.cells[i], // lint:allow(L7): for_each_selected index is in-bounds by CarView contract
                        start: conncar_types::Timestamp::from_secs(v.starts[i]), // lint:allow(L7): for_each_selected index is in-bounds by CarView contract
                        end: conncar_types::Timestamp::from_secs(v.ends[i]), // lint:allow(L7): for_each_selected index is in-bounds by CarView contract
                    });
                });
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        )),
        Aggregation::PerCarSeconds => Pending::PerCar(scan.add_per_car(
            name,
            filter,
            Vec::new,
            |acc: &mut Vec<(CarId, u64)>, v| {
                let mut sum = 0u64;
                v.for_each_selected(|i| sum += v.ends[i] - v.starts[i]); // lint:allow(L7): for_each_selected index is in-bounds; end >= start per record invariant
                acc.push((v.car, sum));
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        )),
        Aggregation::CellBinHistogram { bin_limit } => {
            Pending::Histogram(scan.add_cell_bin_triples(name, filter, bin_limit))
        }
    }
}

/// Claim one query's accumulator and apply the canonical final
/// ordering, mirroring the naive path: rows re-sorted into global
/// `(car, start, cell)` order (shards are car-disjoint, so this is a
/// deterministic permutation), per-car entries sorted by car, histogram
/// collapsed from the already-sorted triple relation.
fn assemble(outputs: &mut SharedOutputs, pending: Pending) -> QueryValue {
    match pending {
        Pending::Count(h) => QueryValue::Count(outputs.take(h)),
        Pending::Rows(h) => {
            let mut rows = outputs.take(h);
            rows.sort_by_key(|r| (r.car, r.start, r.cell));
            QueryValue::Rows(rows)
        }
        Pending::PerCar(h) => {
            let mut entries = outputs.take(h);
            entries.sort_by_key(|&(car, _)| car);
            QueryValue::PerCar(entries)
        }
        Pending::Histogram(h) => {
            let triples = outputs.take(h);
            QueryValue::Histogram(histogram_from_triples(&triples))
        }
    }
}

// ---------------------------------------------------------------------
// Concurrent front: bounded FIFO queue + scheduler thread.
// ---------------------------------------------------------------------

struct Job {
    req: QueryRequest,
    reply: mpsc::Sender<Result<QueryResponse>>,
    /// Injected-clock nanoseconds at admission (0 when the live plane
    /// is disabled); the scheduler turns it into queue-wait latency.
    enqueued_ns: u64,
}

struct ServiceState {
    queue: VecDeque<Job>,
    open: bool,
}

struct ServiceShared {
    state: Mutex<ServiceState>,
    wake: Condvar,
    queue_limit: usize,
}

/// Cloneable submission handle to a running [`QueryService`].
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<ServiceShared>,
    metrics: Arc<ServeMetrics>,
    generation: u64,
}

impl ServeHandle {
    /// Enqueue a request. Returns a receiver that yields the response
    /// once the scheduler's epoch containing the request completes, or
    /// fails fast with [`Error::Overloaded`] when the queue is full.
    pub fn submit(&self, req: QueryRequest) -> Result<mpsc::Receiver<Result<QueryResponse>>> {
        let live = self.metrics.enabled();
        let enqueued_ns = self.metrics.now();
        let (tx, rx) = mpsc::channel();
        // Admission outcome is decided entirely under the guard; all
        // metric recording happens after it drops (lint rule L5 keeps
        // cross-layer work out of guard spans).
        let outcome = {
            let mut state = crate::sync::lock_or_poisoned(&self.shared.state, "serve.ServiceState")?;
            if !state.open {
                Err(Error::Io("query service is shut down".into()))
            } else if state.queue.len() >= self.shared.queue_limit {
                Err(Error::Overloaded {
                    queued: state.queue.len(),
                    limit: self.shared.queue_limit,
                })
            } else {
                state.queue.push_back(Job {
                    req,
                    reply: tx,
                    enqueued_ns,
                });
                Ok(state.queue.len())
            }
        };
        match outcome {
            Ok(depth) => {
                if live {
                    self.metrics.queue_depth.set(depth as u64);
                }
                self.shared.wake.notify_all();
                Ok(rx)
            }
            Err(e) => {
                if live {
                    if let Error::Overloaded { queued, limit } = &e {
                        self.metrics.overloaded.incr();
                        self.metrics.flight().post(
                            enqueued_ns,
                            event::OVERLOAD,
                            *queued as u64,
                            *limit as u64,
                        );
                    }
                }
                Err(e)
            }
        }
    }

    /// The live metrics plane shared with the engine.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Snapshot the live metrics plane against the served store's
    /// generation (the payload a stats frame answers with).
    pub fn stats(&self) -> crate::stats::ServeSnapshot {
        self.metrics.snapshot(self.generation)
    }

    /// Submit and block for the response.
    pub fn query(&self, req: QueryRequest) -> Result<QueryResponse> {
        let rx = self.submit(req)?;
        rx.recv()
            .map_err(|_| Error::Io("query service dropped the request".into()))?
    }
}

/// A [`ServeEngine`] running on its own scheduler thread behind a
/// bounded FIFO queue (see module docs).
pub struct QueryService {
    handle: ServeHandle,
    scheduler: Option<thread::JoinHandle<ServeEngine>>,
}

impl QueryService {
    /// Start the scheduler thread. `queue_limit` bounds in-flight
    /// admitted-but-unanswered requests (clamped to at least 1).
    /// Fails with [`Error::Io`] when the OS refuses the thread.
    pub fn start(mut engine: ServeEngine, queue_limit: usize) -> Result<QueryService> {
        let shared = Arc::new(ServiceShared {
            state: Mutex::new(ServiceState {
                queue: VecDeque::new(),
                open: true,
            }),
            wake: Condvar::new(),
            queue_limit: queue_limit.max(1),
        });
        let metrics = Arc::clone(engine.metrics());
        let generation = engine.store().generation();
        let thread_shared = Arc::clone(&shared);
        let thread_metrics = Arc::clone(&metrics);
        let scheduler = thread::Builder::new()
            .name("conncar-serve-scheduler".into())
            .spawn(move || {
                loop {
                    // The scheduler drains even a poisoned queue: a
                    // panicked submitter leaves a consistent VecDeque,
                    // and refusing to run would wedge every waiter.
                    let (jobs, depth_left): (Vec<Job>, usize) = {
                        let mut state = crate::sync::lock_recover(&thread_shared.state);
                        while state.queue.is_empty() && state.open {
                            state = thread_shared
                                .wake
                                .wait(state)
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                        }
                        if state.queue.is_empty() {
                            break; // closed and drained
                        }
                        let n = state.queue.len().min(engine.epoch_max());
                        let jobs = state.queue.drain(..n).collect();
                        (jobs, state.queue.len())
                    };
                    if thread_metrics.enabled() {
                        // Queue wait ends here: the drain is the moment
                        // the scheduler takes ownership of the batch.
                        let now = thread_metrics.now();
                        for job in &jobs {
                            thread_metrics
                                .queue_wait_ns
                                .record(now.saturating_sub(job.enqueued_ns));
                        }
                        thread_metrics.queue_depth.set(depth_left as u64);
                    }
                    let reqs: Vec<QueryRequest> = jobs.iter().map(|j| j.req.clone()).collect();
                    let responses = engine.submit_batch(&reqs);
                    for (job, resp) in jobs.into_iter().zip(responses) {
                        // A dropped waiter is fine; the result is
                        // already cached for the next asker.
                        let _ = job.reply.send(resp);
                    }
                }
                engine
            })
            .map_err(|e| Error::Io(format!("spawn scheduler thread: {e}")))?;
        Ok(QueryService {
            handle: ServeHandle {
                shared,
                metrics,
                generation,
            },
            scheduler: Some(scheduler),
        })
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Close admission, drain the queue, stop the scheduler, and return
    /// the engine (for counter inspection and artifact emission).
    ///
    /// Returns [`Error::Poisoned`] when the scheduler thread panicked —
    /// the engine (and its counters) died with it, so there is nothing
    /// sound to hand back.
    pub fn shutdown(mut self) -> Result<ServeEngine> {
        {
            // Teardown must proceed even past a poisoned lock; closing
            // `open` only writes one bool.
            let mut state = crate::sync::lock_recover(&self.handle.shared.state);
            state.open = false;
        }
        self.handle.shared.wake.notify_all();
        let scheduler = self
            .scheduler
            .take()
            .ok_or(Error::Poisoned { what: "serve.scheduler" })?;
        scheduler
            .join()
            .map_err(|_| Error::Poisoned { what: "serve.scheduler" })
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        if let Some(scheduler) = self.scheduler.take() {
            {
                let mut state = crate::sync::lock_recover(&self.handle.shared.state);
                state.open = false;
            }
            self.handle.shared.wake.notify_all();
            let _ = scheduler.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_cdr::CdrDataset;
    use conncar_obs::NullClock;
    use conncar_store::Filter;
    use conncar_types::{BaseStationId, Carrier, DayOfWeek, StudyPeriod, Timestamp};

    fn sample_store(shards: usize) -> Arc<CdrStore> {
        let records = (0..400)
            .map(|i| CdrRecord {
                car: CarId(i % 23),
                cell: CellId::new(BaseStationId(i % 5), 0, Carrier::C3),
                start: Timestamp::from_secs(u64::from(i) * 997 % 500_000),
                end: Timestamp::from_secs(u64::from(i) * 997 % 500_000 + 60),
            })
            .collect();
        let ds = CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records);
        Arc::new(CdrStore::build_with_clock(&ds, shards, Arc::new(NullClock)))
    }

    fn reqs() -> Vec<QueryRequest> {
        vec![
            QueryRequest::new(Filter::all(), Aggregation::Count),
            QueryRequest::new(Filter::all().car(CarId(3)), Aggregation::Rows),
            QueryRequest::new(Filter::all(), Aggregation::PerCarSeconds),
            QueryRequest::new(
                Filter::all().car(CarId(7)),
                Aggregation::CellBinHistogram { bin_limit: 700 },
            ),
        ]
    }

    #[test]
    fn batch_matches_naive_execution() {
        let store = sample_store(8);
        let mut engine = ServeEngine::new(Arc::clone(&store), 16, 8);
        let reqs = reqs();
        let responses = engine.submit_batch(&reqs);
        for (req, resp) in reqs.iter().zip(responses) {
            let resp = resp.expect("valid request");
            let (want, _) = req.execute_single(&store);
            assert_eq!(resp.value, want, "{req:?}");
            assert!(!resp.cache_hit);
        }
        assert_eq!(engine.counters().get(keys::EPOCHS), 1);
        assert_eq!(engine.counters().get(keys::CACHE_MISSES), 4);
    }

    #[test]
    fn repeated_request_hits_cache() {
        let store = sample_store(4);
        let mut engine = ServeEngine::new(store, 16, 8);
        let req = QueryRequest::new(Filter::all(), Aggregation::Count);
        let first = engine.submit(&req).unwrap();
        assert!(!first.cache_hit);
        let second = engine.submit(&req).unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.value, second.value);
        assert_eq!(first.stats.shards_scanned, second.stats.shards_scanned);
        assert_eq!(engine.counters().get(keys::CACHE_HITS), 1);
    }

    #[test]
    fn store_rebuild_invalidates_cache_via_generation() {
        let store_a = sample_store(4);
        let mut engine = ServeEngine::new(store_a, 16, 8);
        let req = QueryRequest::new(Filter::all(), Aggregation::Count);
        engine.submit(&req).unwrap();
        assert!(engine.submit(&req).unwrap().cache_hit);
        // Same data, fresh build: new generation, so the hit vanishes
        // without any explicit invalidation.
        let store_b = sample_store(4);
        let metrics_b = Arc::new(ServeMetrics::new(
            store_b.shared_clock(),
            MetricsConfig::default(),
        ));
        let mut engine_b = ServeEngine {
            store: store_b,
            cache: engine.cache.clone(),
            epoch_max: engine.epoch_max,
            counters: CounterRegistry::new(),
            metrics: metrics_b,
        };
        assert!(!engine_b.submit(&req).unwrap().cache_hit);
    }

    #[test]
    fn cache_op_counters_pin_fill_evict_refill() {
        let store = sample_store(4);
        // Capacity 2: three distinct queries fill, evict, then the
        // refill of the evicted query misses again.
        let mut engine = ServeEngine::new(store, 2, 8);
        let q: Vec<QueryRequest> = (0..3)
            .map(|i| QueryRequest::new(Filter::all().car(CarId(i)), Aggregation::Count))
            .collect();
        // Fill: two inserts, no evictions.
        engine.submit(&q[0]).unwrap();
        engine.submit(&q[1]).unwrap();
        assert_eq!(engine.counters().get(keys::CACHE_INSERT), 2);
        assert_eq!(engine.counters().get(keys::CACHE_EVICT), 0);
        // Overflow: third insert evicts the LRU (q0).
        engine.submit(&q[2]).unwrap();
        assert_eq!(engine.counters().get(keys::CACHE_INSERT), 3);
        assert_eq!(engine.counters().get(keys::CACHE_EVICT), 1);
        // Hits on the two residents, then the refill of q0 misses and
        // evicts again.
        assert!(engine.submit(&q[1]).unwrap().cache_hit);
        assert!(engine.submit(&q[2]).unwrap().cache_hit);
        assert!(!engine.submit(&q[0]).unwrap().cache_hit);
        assert_eq!(engine.counters().get(keys::CACHE_HIT), 2);
        assert_eq!(engine.counters().get(keys::CACHE_MISS), 4);
        assert_eq!(engine.counters().get(keys::CACHE_INSERT), 4);
        assert_eq!(engine.counters().get(keys::CACHE_EVICT), 2);
        // The per-op namespace groups under one prefix, and the live
        // plane mirrors the deterministic ledger.
        assert_eq!(engine.counters().sum_prefix("serve.cache."), 12);
        let snap = engine.snapshot();
        assert_eq!(snap.counter("serve.live.cache_inserts"), 4);
        assert_eq!(snap.counter("serve.live.cache_evictions"), 2);
        assert_eq!(snap.counter("serve.live.cache_hits"), 2);
        assert_eq!(snap.counter("serve.live.cache_misses"), 4);
    }

    #[test]
    fn duplicate_requests_in_batch_coalesce() {
        let store = sample_store(8);
        let mut engine = ServeEngine::new(store, 16, 8);
        let req = QueryRequest::new(Filter::all(), Aggregation::Count);
        let batch = vec![req.clone(), req.clone(), req];
        let responses = engine.submit_batch(&batch);
        let values: Vec<_> = responses
            .into_iter()
            .map(|r| r.expect("valid").value)
            .collect();
        assert_eq!(values[0], values[1]);
        assert_eq!(values[1], values[2]);
        assert_eq!(engine.counters().get(keys::COALESCED), 2);
        // One execution: physical scans equal one full pass.
        assert_eq!(
            engine.counters().get(keys::PHYSICAL_SHARD_SCANS),
            u64::from(engine.store().shard_count() as u32)
        );
    }

    #[test]
    fn invalid_requests_reject_without_poisoning_the_batch() {
        let store = sample_store(4);
        let mut engine = ServeEngine::new(store, 16, 8);
        let good = QueryRequest::new(Filter::all(), Aggregation::Count);
        let bad = QueryRequest::new(
            Filter::all().window(Timestamp::from_secs(9), Timestamp::from_secs(3)),
            Aggregation::Count,
        );
        let responses = engine.submit_batch(&[bad, good]);
        assert!(matches!(
            responses[0],
            Err(Error::InvalidFilter { what: "window", .. })
        ));
        assert!(responses[1].is_ok());
        assert_eq!(engine.counters().get(keys::REJECTED), 1);
    }

    #[test]
    fn epochs_split_at_epoch_max() {
        let store = sample_store(4);
        let mut engine = ServeEngine::new(Arc::clone(&store), 64, 2);
        let batch: Vec<QueryRequest> = (0..5)
            .map(|i| QueryRequest::new(Filter::all().car(CarId(i)), Aggregation::Count))
            .collect();
        let responses = engine.submit_batch(&batch);
        assert!(responses.iter().all(Result::is_ok));
        assert_eq!(engine.counters().get(keys::EPOCHS), 3);
    }

    #[test]
    fn sharing_beats_naive_on_scan_heavy_batches() {
        let store = sample_store(16);
        let mut engine = ServeEngine::new(store, 0, 16);
        // Four distinct full scans in one epoch: shared pass reads each
        // shard once, naive would read each four times.
        let batch = vec![
            QueryRequest::new(Filter::all(), Aggregation::Count),
            QueryRequest::new(Filter::all(), Aggregation::PerCarSeconds),
            QueryRequest::new(
                Filter::all().carrier(Carrier::C3),
                Aggregation::Count,
            ),
            QueryRequest::new(Filter::all(), Aggregation::CellBinHistogram { bin_limit: 700 }),
        ];
        let responses = engine.submit_batch(&batch);
        assert!(responses.iter().all(Result::is_ok));
        let physical = engine.counters().get(keys::PHYSICAL_SHARD_SCANS);
        let naive = engine.counters().get(keys::NAIVE_SHARD_SCANS);
        assert!(
            naive >= 2 * physical,
            "expected ≥2× sharing, physical={physical} naive={naive}"
        );
    }

    #[test]
    fn service_answers_concurrent_submitters_fifo() {
        let store = sample_store(8);
        let engine = ServeEngine::new(Arc::clone(&store), 64, 8);
        let service = QueryService::start(engine, 128).expect("start");
        let handle = service.handle();
        let workers: Vec<_> = (0..6)
            .map(|i| {
                let h = handle.clone();
                let store = Arc::clone(&store);
                thread::spawn(move || {
                    let req = QueryRequest::new(
                        Filter::all().car(CarId(i % 23)),
                        Aggregation::Rows,
                    );
                    let resp = h.query(req.clone()).expect("served");
                    let (want, _) = req.execute_single(&store);
                    assert_eq!(resp.value, want);
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
        let engine = service.shutdown().expect("clean shutdown");
        assert_eq!(engine.counters().get(keys::QUERIES), 6);
    }

    #[test]
    fn admission_bound_overloads() {
        // Plug the scheduler with an engine over a store, fill the
        // queue beyond its bound, and observe the typed rejection. The
        // scheduler is kept busy by submitting from inside the batch
        // being... simpler: use queue_limit 1 and a slow first query is
        // not controllable — instead close admission and check the
        // queue-full path directly via a stopped service.
        let store = sample_store(2);
        let engine = ServeEngine::new(store, 4, 4);
        let service = QueryService::start(engine, 1).expect("start");
        let handle = service.handle();
        // Race-free check: the bound rejects when the queue is full at
        // submit time. Submit many quickly; at least the happy path
        // must work and any rejection must be the typed error.
        let mut overloads = 0;
        for i in 0..64 {
            match handle.submit(QueryRequest::new(
                Filter::all().car(CarId(i)),
                Aggregation::Count,
            )) {
                Ok(rx) => {
                    let _ = rx.recv();
                }
                Err(Error::Overloaded { limit, .. }) => {
                    assert_eq!(limit, 1);
                    overloads += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        drop(overloads);
        let engine = service.shutdown().expect("clean shutdown");
        assert!(engine.counters().get(keys::QUERIES) >= 1);
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let store = sample_store(2);
        let service = QueryService::start(ServeEngine::new(store, 4, 4), 8).expect("start");
        let handle = service.handle();
        service.shutdown().expect("clean shutdown");
        assert!(handle
            .submit(QueryRequest::new(Filter::all(), Aggregation::Count))
            .is_err());
    }
}

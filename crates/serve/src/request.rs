//! The request model: a typed, canonically encoded query.
//!
//! A [`QueryRequest`] pairs a store [`Filter`] with an [`Aggregation`]
//! kind — the four shapes every §4 analysis reduces to (count, raw
//! rows, a per-car fold, the (cell, 15-min-bin) histogram). Requests
//! have a **canonical byte encoding**: the filter's id sets are kept
//! sorted and deduplicated by the `Filter` builders, fields are emitted
//! in a fixed order with fixed-width little-endian integers, and the
//! encoding starts with a version byte. Two semantically identical
//! requests therefore encode to identical bytes, which makes the FNV-64
//! [`QueryRequest::digest`] a usable cache identity and makes any
//! recorded request stream replayable byte-for-byte.
//!
//! [`QueryValue`] is the result side, with the same property: a
//! deterministic encoding so responses can be framed over the wire,
//! cached, and diffed across runs.

use conncar_cdr::CdrRecord;
use conncar_store::{CdrStore, Filter, QueryStats, RecordKind};
use conncar_types::{
    fnv1a64, BaseStationId, CarId, Carrier, CellId, Duration, Error, Result, Timestamp,
};

/// Canonical encoding version byte (bump on any layout change).
pub const ENCODING_VERSION: u8 = 1;

/// What to compute over the filtered rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Number of matching records.
    Count,
    /// The matching records themselves, in the dataset's canonical
    /// `(car, start, cell)` order.
    Rows,
    /// Per-car total connected seconds, sorted by car id.
    PerCarSeconds,
    /// Distinct-car count per `(cell, 15-minute bin)`, sorted by
    /// `(cell, bin)` — the paper's utilization histogram shape.
    CellBinHistogram {
        /// Exclusive upper bound on bin indices (usually the study
        /// period's `total_bins()`).
        bin_limit: u64,
    },
}

/// One query: a typed filter plus an aggregation kind.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Row predicate (canonical: id sets sorted + deduplicated).
    pub filter: Filter,
    /// Aggregation to compute.
    pub agg: Aggregation,
}

impl QueryRequest {
    /// Build a request.
    pub fn new(filter: Filter, agg: Aggregation) -> QueryRequest {
        QueryRequest { filter, agg }
    }

    /// Admission-time validation: a request whose filter can never
    /// match is rejected with a typed error instead of silently
    /// returning an empty result.
    pub fn validate(&self) -> Result<()> {
        self.filter.validate()
    }

    /// Canonical byte encoding (see module docs).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![ENCODING_VERSION];
        match self.filter.car_set() {
            None => out.push(0),
            Some(cars) => {
                out.push(1);
                put_u32(&mut out, cars.len() as u32);
                for c in cars {
                    put_u32(&mut out, c.0);
                }
            }
        }
        match self.filter.cell_set() {
            None => out.push(0),
            Some(cells) => {
                out.push(1);
                put_u32(&mut out, cells.len() as u32);
                for c in cells {
                    put_cell(&mut out, *c);
                }
            }
        }
        match self.filter.carrier_restriction() {
            None => out.push(0),
            Some(c) => {
                out.push(1);
                out.push(c.index() as u8);
            }
        }
        match self.filter.window_bounds() {
            None => out.push(0),
            Some((ws, we)) => {
                out.push(1);
                put_u64(&mut out, ws);
                put_u64(&mut out, we);
            }
        }
        match self.filter.kind_restriction() {
            RecordKind::Any => out.push(0),
            RecordKind::ShorterThan(d) => {
                out.push(1);
                put_u64(&mut out, d.as_secs());
            }
            RecordKind::AtLeast(d) => {
                out.push(2);
                put_u64(&mut out, d.as_secs());
            }
        }
        match self.agg {
            Aggregation::Count => out.push(0),
            Aggregation::Rows => out.push(1),
            Aggregation::PerCarSeconds => out.push(2),
            Aggregation::CellBinHistogram { bin_limit } => {
                out.push(3);
                put_u64(&mut out, bin_limit);
            }
        }
        out
    }

    /// Decode a canonical encoding. The filter is rebuilt through the
    /// sorting/deduplicating builders, so `decode(encode(r))` is `r`
    /// and re-encoding is byte-identical even for hand-built frames.
    pub fn decode(bytes: &[u8]) -> Result<QueryRequest> {
        let mut c = Cursor::new(bytes);
        let version = c.u8()?;
        if version != ENCODING_VERSION {
            return Err(Error::UnsupportedVersion { found: version });
        }
        let mut filter = Filter::all();
        if c.u8()? == 1 {
            let n = c.u32()? as usize;
            let mut cars = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                cars.push(CarId(c.u32()?));
            }
            filter = filter.cars(cars);
        }
        if c.u8()? == 1 {
            let n = c.u32()? as usize;
            let mut cells = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                cells.push(c.cell()?);
            }
            filter = filter.cells(cells);
        }
        if c.u8()? == 1 {
            filter = filter.carrier(c.carrier()?);
        }
        if c.u8()? == 1 {
            let (ws, we) = (c.u64()?, c.u64()?);
            filter = filter.window(Timestamp::from_secs(ws), Timestamp::from_secs(we));
        }
        match c.u8()? {
            0 => {}
            1 => filter = filter.kind(RecordKind::ShorterThan(Duration::from_secs(c.u64()?))),
            2 => filter = filter.kind(RecordKind::AtLeast(Duration::from_secs(c.u64()?))),
            t => return c.bad(format!("unknown record-kind tag {t}")),
        }
        let agg = match c.u8()? {
            0 => Aggregation::Count,
            1 => Aggregation::Rows,
            2 => Aggregation::PerCarSeconds,
            3 => Aggregation::CellBinHistogram { bin_limit: c.u64()? },
            t => return c.bad(format!("unknown aggregation tag {t}")),
        };
        c.finish()?;
        Ok(QueryRequest { filter, agg })
    }

    /// FNV-64 digest of the canonical encoding — the request half of
    /// the `(digest, store generation)` cache key.
    pub fn digest(&self) -> u64 {
        fnv1a64(&self.encode())
    }

    /// Execute this request alone against a store — the reference
    /// (naive) execution path the shared-scan scheduler must match
    /// byte-for-byte, and the engine behind `conncar query`.
    pub fn execute_single(&self, store: &CdrStore) -> (QueryValue, QueryStats) {
        match self.agg {
            Aggregation::Count => {
                let (n, stats) = store.count(&self.filter);
                (QueryValue::Count(n), stats)
            }
            Aggregation::Rows => {
                let (rows, stats) = store.collect(&self.filter);
                (QueryValue::Rows(rows), stats)
            }
            Aggregation::PerCarSeconds => {
                let (per_car, stats) =
                    conncar_store::kernels::fold_per_car_views(store, &self.filter, |v| {
                        let mut sum = 0u64;
                        v.for_each_selected(|i| sum += v.ends[i] - v.starts[i]); // lint:allow(L7): for_each_selected index is in-bounds; end >= start per record invariant
                        sum
                    });
                (QueryValue::PerCar(per_car), stats)
            }
            Aggregation::CellBinHistogram { bin_limit } => {
                let (triples, stats) =
                    conncar_store::kernels::cell_bin_car_triples(store, &self.filter, bin_limit);
                (QueryValue::Histogram(histogram_from_triples(&triples)), stats)
            }
        }
    }
}

/// Collapse the sorted, deduplicated `(cell, bin, car)` relation into
/// distinct-car counts per `(cell, bin)`.
pub(crate) fn histogram_from_triples(
    triples: &[(CellId, u64, CarId)],
) -> Vec<(CellId, u64, u64)> {
    let mut out: Vec<(CellId, u64, u64)> = Vec::new();
    for &(cell, bin, _car) in triples {
        match out.last_mut() {
            Some((c, b, n)) if *c == cell && *b == bin => *n += 1,
            _ => out.push((cell, bin, 1)),
        }
    }
    out
}

/// A query result. Every variant is fully ordered and deterministic:
/// equal data always yields equal values, and equal values equal bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryValue {
    /// Matching-record count.
    Count(u64),
    /// Matching records, canonical `(car, start, cell)` order.
    Rows(Vec<CdrRecord>),
    /// `(car, total connected seconds)`, sorted by car.
    PerCar(Vec<(CarId, u64)>),
    /// `(cell, bin, distinct cars)`, sorted by `(cell, bin)`.
    Histogram(Vec<(CellId, u64, u64)>),
}

impl QueryValue {
    /// Deterministic byte encoding (wire + cache identity).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            QueryValue::Count(n) => {
                out.push(0);
                put_u64(&mut out, *n);
            }
            QueryValue::Rows(rows) => {
                out.push(1);
                put_u32(&mut out, rows.len() as u32);
                for r in rows {
                    put_u32(&mut out, r.car.0);
                    put_cell(&mut out, r.cell);
                    put_u64(&mut out, r.start.as_secs());
                    put_u64(&mut out, r.end.as_secs());
                }
            }
            QueryValue::PerCar(entries) => {
                out.push(2);
                put_u32(&mut out, entries.len() as u32);
                for (car, secs) in entries {
                    put_u32(&mut out, car.0);
                    put_u64(&mut out, *secs);
                }
            }
            QueryValue::Histogram(entries) => {
                out.push(3);
                put_u32(&mut out, entries.len() as u32);
                for (cell, bin, cars) in entries {
                    put_cell(&mut out, *cell);
                    put_u64(&mut out, *bin);
                    put_u64(&mut out, *cars);
                }
            }
        }
        out
    }

    /// Decode an encoding produced by [`QueryValue::encode`].
    pub fn decode(bytes: &[u8]) -> Result<QueryValue> {
        let mut c = Cursor::new(bytes);
        let v = match c.u8()? {
            0 => QueryValue::Count(c.u64()?),
            1 => {
                let n = c.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let car = CarId(c.u32()?);
                    let cell = c.cell()?;
                    let start = Timestamp::from_secs(c.u64()?);
                    let end = Timestamp::from_secs(c.u64()?);
                    rows.push(CdrRecord {
                        car,
                        cell,
                        start,
                        end,
                    });
                }
                QueryValue::Rows(rows)
            }
            2 => {
                let n = c.u32()? as usize;
                let mut entries = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    entries.push((CarId(c.u32()?), c.u64()?));
                }
                QueryValue::PerCar(entries)
            }
            3 => {
                let n = c.u32()? as usize;
                let mut entries = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    entries.push((c.cell()?, c.u64()?, c.u64()?));
                }
                QueryValue::Histogram(entries)
            }
            t => return c.bad(format!("unknown value tag {t}")),
        };
        c.finish()?;
        Ok(v)
    }

    /// Number of items in the value (1 for a count).
    pub fn item_count(&self) -> usize {
        match self {
            QueryValue::Count(_) => 1,
            QueryValue::Rows(v) => v.len(),
            QueryValue::PerCar(v) => v.len(),
            QueryValue::Histogram(v) => v.len(),
        }
    }

    /// Human-readable rendering for the CLI (first `limit` items of
    /// list-shaped values, then an elision line).
    pub fn render(&self, limit: usize) -> String {
        let mut out = String::new();
        match self {
            QueryValue::Count(n) => out.push_str(&format!("count: {n}\n")),
            QueryValue::Rows(rows) => {
                out.push_str(&format!("rows: {}\n", rows.len()));
                for r in rows.iter().take(limit) {
                    out.push_str(&format!(
                        "  {} {} [{}, {})\n",
                        r.car,
                        r.cell,
                        r.start.as_secs(),
                        r.end.as_secs()
                    ));
                }
                elide(&mut out, rows.len(), limit);
            }
            QueryValue::PerCar(entries) => {
                out.push_str(&format!("cars: {}\n", entries.len()));
                for (car, secs) in entries.iter().take(limit) {
                    out.push_str(&format!("  {car}: {secs} s\n"));
                }
                elide(&mut out, entries.len(), limit);
            }
            QueryValue::Histogram(entries) => {
                out.push_str(&format!("(cell, bin) entries: {}\n", entries.len()));
                for (cell, bin, cars) in entries.iter().take(limit) {
                    out.push_str(&format!("  {cell} bin {bin}: {cars} cars\n"));
                }
                elide(&mut out, entries.len(), limit);
            }
        }
        out
    }
}

fn elide(out: &mut String, total: usize, limit: usize) {
    if total > limit {
        out.push_str(&format!("  … {} more\n", total - limit));
    }
}

#[inline]
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_cell(out: &mut Vec<u8>, cell: CellId) {
    put_u32(out, cell.station.0);
    out.push(cell.sector);
    out.push(cell.carrier.index() as u8);
}

/// Bounds-checked little-endian reader over an encoded buffer.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    /// Consume the next `n` bytes. The claimed width is validated
    /// against the bytes actually present (overflow included) before
    /// the cursor moves, so a lying length yields a typed error.
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).unwrap_or(usize::MAX);
        match self.bytes.get(self.pos..end) {
            Some(s) => {
                self.pos = end;
                Ok(s)
            }
            None => Err(Error::Decode {
                offset: Some(self.pos as u64),
                why: format!(
                    "truncated: wanted {n} bytes, {} left",
                    self.bytes.len().saturating_sub(self.pos)
                ),
            }),
        }
    }

    /// Everything not yet consumed (possibly empty).
    pub(crate) fn rest(&self) -> &'a [u8] {
        self.bytes.get(self.pos..).unwrap_or(&[])
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        match *self.take(1)? {
            [b] => Ok(b),
            _ => self.bad("u8 span of wrong width".into()),
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        match *self.take(4)? {
            [a, b, c, d] => Ok(u32::from_le_bytes([a, b, c, d])),
            _ => self.bad("u32 span of wrong width".into()),
        }
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        match *self.take(8)? {
            [a, b, c, d, e, f, g, h] => Ok(u64::from_le_bytes([a, b, c, d, e, f, g, h])),
            _ => self.bad("u64 span of wrong width".into()),
        }
    }

    pub(crate) fn carrier(&mut self) -> Result<Carrier> {
        let i = self.u8()?;
        Carrier::from_index(i as usize).ok_or(Error::Decode {
            offset: Some(self.pos as u64 - 1),
            why: format!("carrier index {i} out of range"),
        })
    }

    pub(crate) fn cell(&mut self) -> Result<CellId> {
        let station = BaseStationId(self.u32()?);
        let sector = self.u8()?;
        let carrier = self.carrier()?;
        Ok(CellId::new(station, sector, carrier))
    }

    pub(crate) fn bad<T>(&self, why: String) -> Result<T> {
        Err(Error::Decode {
            offset: Some(self.pos.saturating_sub(1) as u64),
            why,
        })
    }

    pub(crate) fn finish(&self) -> Result<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(Error::Decode {
                offset: Some(self.pos as u64),
                why: format!("{} trailing bytes", self.bytes.len() - self.pos),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::{DayOfWeek, StudyPeriod};

    fn cell(station: u32, sector: u8, carrier: Carrier) -> CellId {
        CellId::new(BaseStationId(station), sector, carrier)
    }

    fn sample_requests() -> Vec<QueryRequest> {
        vec![
            QueryRequest::new(Filter::all(), Aggregation::Count),
            QueryRequest::new(
                Filter::all().cars(vec![CarId(7), CarId(3), CarId(7)]),
                Aggregation::Rows,
            ),
            QueryRequest::new(
                Filter::all()
                    .cells(vec![cell(4, 1, Carrier::C2), cell(1, 0, Carrier::C5)])
                    .window(Timestamp::from_secs(100), Timestamp::from_secs(9_000)),
                Aggregation::PerCarSeconds,
            ),
            QueryRequest::new(
                Filter::all()
                    .carrier(Carrier::C3)
                    .kind(RecordKind::AtLeast(Duration::from_secs(600))),
                Aggregation::CellBinHistogram { bin_limit: 96 },
            ),
            QueryRequest::new(
                Filter::all().kind(RecordKind::ShorterThan(Duration::from_secs(30))),
                Aggregation::Count,
            ),
        ]
    }

    #[test]
    fn encoding_round_trips_and_is_canonical() {
        for req in sample_requests() {
            let bytes = req.encode();
            let back = QueryRequest::decode(&bytes).unwrap();
            assert_eq!(back, req);
            assert_eq!(back.encode(), bytes, "re-encode must be byte-identical");
            assert_eq!(back.digest(), req.digest());
        }
    }

    #[test]
    fn unsorted_id_sets_encode_identically() {
        let a = QueryRequest::new(
            Filter::all().cars(vec![CarId(9), CarId(2), CarId(2), CarId(5)]),
            Aggregation::Count,
        );
        let b = QueryRequest::new(
            Filter::all().cars(vec![CarId(2), CarId(5), CarId(9)]),
            Aggregation::Count,
        );
        assert_eq!(a.encode(), b.encode());
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn distinct_requests_have_distinct_digests() {
        let reqs = sample_requests();
        for (i, a) in reqs.iter().enumerate() {
            for b in reqs.iter().skip(i + 1) {
                assert_ne!(a.digest(), b.digest(), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        let good = sample_requests()[2].encode();
        assert!(matches!(
            QueryRequest::decode(&good[..good.len() - 1]),
            Err(Error::Decode { .. })
        ));
        let mut versioned = good.clone();
        versioned[0] = 99;
        assert!(matches!(
            QueryRequest::decode(&versioned),
            Err(Error::UnsupportedVersion { found: 99 })
        ));
        let mut trailing = good;
        trailing.push(0);
        assert!(matches!(
            QueryRequest::decode(&trailing),
            Err(Error::Decode { .. })
        ));
        let mut bad_carrier = QueryRequest::new(
            Filter::all().carrier(Carrier::C1),
            Aggregation::Count,
        )
        .encode();
        // carrier payload byte sits right after the three set flags.
        let idx = bad_carrier.len() - 4;
        bad_carrier[idx] = 7;
        assert!(matches!(
            QueryRequest::decode(&bad_carrier),
            Err(Error::Decode { .. })
        ));
    }

    #[test]
    fn value_encoding_round_trips() {
        let values = vec![
            QueryValue::Count(42),
            QueryValue::Rows(vec![CdrRecord {
                car: CarId(3),
                cell: cell(1, 2, Carrier::C4),
                start: Timestamp::from_secs(10),
                end: Timestamp::from_secs(95),
            }]),
            QueryValue::PerCar(vec![(CarId(1), 600), (CarId(9), 0)]),
            QueryValue::Histogram(vec![(cell(2, 0, Carrier::C1), 7, 3)]),
        ];
        for v in values {
            let bytes = v.encode();
            assert_eq!(QueryValue::decode(&bytes).unwrap(), v);
            assert_eq!(v.item_count() > 0, !bytes.is_empty());
            assert!(!v.render(2).is_empty());
        }
        assert!(QueryValue::decode(&[9]).is_err());
    }

    #[test]
    fn validate_surfaces_filter_rejections() {
        let bad = QueryRequest::new(
            Filter::all().window(Timestamp::from_secs(50), Timestamp::from_secs(50)),
            Aggregation::Count,
        );
        assert!(matches!(
            bad.validate(),
            Err(Error::InvalidFilter { what: "window", .. })
        ));
        assert!(QueryRequest::new(Filter::all(), Aggregation::Count)
            .validate()
            .is_ok());
    }

    #[test]
    fn execute_single_covers_every_aggregation() {
        use conncar_cdr::CdrDataset;
        let records = (0..60)
            .map(|i| CdrRecord {
                car: CarId(i % 7),
                cell: cell(i % 3, 0, Carrier::C3),
                start: Timestamp::from_secs(u64::from(i) * 500),
                end: Timestamp::from_secs(u64::from(i) * 500 + 120),
            })
            .collect();
        let ds = CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records);
        let store = CdrStore::build(&ds, 4);
        let bins = ds.period().total_bins();

        let (count, _) =
            QueryRequest::new(Filter::all(), Aggregation::Count).execute_single(&store);
        assert_eq!(count, QueryValue::Count(60));

        let (rows, _) = QueryRequest::new(Filter::all().car(CarId(2)), Aggregation::Rows)
            .execute_single(&store);
        match &rows {
            QueryValue::Rows(r) => {
                assert!(!r.is_empty());
                assert!(r.windows(2).all(|w| (w[0].car, w[0].start) <= (w[1].car, w[1].start)));
            }
            other => panic!("wrong shape: {other:?}"),
        }

        let (per_car, _) = QueryRequest::new(Filter::all(), Aggregation::PerCarSeconds)
            .execute_single(&store);
        match &per_car {
            QueryValue::PerCar(entries) => {
                assert_eq!(entries.len(), 7);
                assert!(entries.iter().all(|&(_, secs)| secs > 0));
            }
            other => panic!("wrong shape: {other:?}"),
        }

        let (hist, _) = QueryRequest::new(
            Filter::all(),
            Aggregation::CellBinHistogram { bin_limit: bins },
        )
        .execute_single(&store);
        match &hist {
            QueryValue::Histogram(entries) => {
                assert!(!entries.is_empty());
                assert!(entries.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }
}

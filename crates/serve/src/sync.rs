//! Sanctioned lock-acquisition helpers — the only file where the
//! workspace may touch a [`PoisonError`] directly (lint rule L5).
//!
//! A `Mutex` poisons when a thread panics while holding its guard.
//! Calling `.lock().unwrap()` at every site turns that one panic into
//! a cascade: every thread that next touches the lock dies too, and a
//! single bad request takes down the whole serve plane. The two
//! helpers here are the sanctioned alternatives:
//!
//! * [`lock_or_poisoned`] — for request/scheduler paths that can
//!   return a [`Result`]: maps poison to the typed
//!   [`Error::Poisoned`], so callers degrade (fail one query, sever
//!   one connection) instead of panicking.
//! * [`lock_recover`] — for paths that cannot fail (`Drop` impls,
//!   shutdown teardown): takes the guard anyway via
//!   [`PoisonError::into_inner`]. Safe here because every structure
//!   behind the serve locks is valid at every await-free step — a
//!   panicked holder leaves a consistent (if partial) queue that
//!   teardown is allowed to observe.
//!
//! Rule L5 bans `.unwrap()`/`.expect()`/`.unwrap_or_else()` on lock
//! results everywhere else; the lint names this file as the single
//! exemption (see `DESIGN.md` §14).

use conncar_types::{Error, Result};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock `m`, mapping poison to [`Error::Poisoned`] labelled `what`.
///
/// `what` names the protected structure (`"serve.ServiceState"`,
/// `"serve.ConnTable"`) so the operator log says *which* lock a
/// panicked worker poisoned.
pub fn lock_or_poisoned<'a, T>(
    m: &'a Mutex<T>,
    what: &'static str,
) -> Result<MutexGuard<'a, T>> {
    m.lock().map_err(|_| Error::Poisoned { what })
}

/// Lock `m`, recovering the guard even if the lock is poisoned.
///
/// For infallible contexts only (teardown, `Drop`): the returned
/// guard may reflect a holder that died mid-update, so callers must
/// treat the contents as advisory — drain-and-discard, never trust
/// invariants that span multiple fields.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn poison(m: &Arc<Mutex<Vec<u32>>>) {
        let m2 = Arc::clone(m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().expect("first take");
            panic!("poison the lock");
        })
        .join();
    }

    #[test]
    fn healthy_lock_passes_through() {
        let m = Mutex::new(vec![1u32]);
        let g = lock_or_poisoned(&m, "test.lock").expect("healthy");
        assert_eq!(*g, vec![1]);
    }

    #[test]
    fn poisoned_lock_becomes_a_typed_error() {
        let m = Arc::new(Mutex::new(vec![1u32]));
        poison(&m);
        let err = lock_or_poisoned(&m, "test.lock").err().expect("poisoned");
        assert!(matches!(err, Error::Poisoned { what: "test.lock" }));
        assert!(err.to_string().contains("test.lock"));
    }

    #[test]
    fn recover_returns_the_guard_despite_poison() {
        let m = Arc::new(Mutex::new(vec![7u32]));
        poison(&m);
        assert_eq!(*lock_recover(&m), vec![7]);
    }
}

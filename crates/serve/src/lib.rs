//! # conncar-serve
//!
//! The serving plane: a long-lived concurrent query engine over a
//! [`conncar_store::CdrStore`], the "cniCloud for conncar" the roadmap
//! asks for. The paper's analyses are one-shot batch scans; a carrier
//! operating the fleet faces the dual problem — many small ad-hoc
//! questions arriving concurrently over the same 1.1B-connection table.
//! This crate answers them with four layers:
//!
//! * **requests** ([`QueryRequest`]) — a typed [`conncar_store::Filter`]
//!   plus an aggregation kind (count / rows / per-car seconds /
//!   cell-bin histogram), with a canonical byte encoding: hashable
//!   ([`QueryRequest::digest`]), framable, replayable;
//! * **shared-scan scheduling** ([`ServeEngine`]) — concurrently
//!   admitted queries batch into FIFO **epochs**; each epoch compiles
//!   into one [`conncar_store::SharedScan`] that walks the union of the
//!   queries' shard plans exactly once, with per-query
//!   [`conncar_store::QueryStats`] attribution. Results are
//!   byte-identical to running each query alone — concurrency changes
//!   cost, never answers;
//! * **admission + caching** — a bounded FIFO queue that refuses
//!   overload with a typed error, and a generation-keyed LRU
//!   [`ResultCache`]: keys are `(request digest, store generation)`, so
//!   a rebuilt store invalidates every stale entry by construction;
//! * **the front door** ([`ServeServer`] / [`ServeClient`]) — a
//!   length-prefixed framed TCP protocol on a small accept pool, all
//!   workers funneling into one scheduler so network concurrency is
//!   exactly what creates scan sharing. [`workload`] generates the
//!   deterministic synthetic mixes the load bench and its CI gate run;
//! * **the live metrics plane** ([`metrics`] / [`stats`]) — lock-free
//!   `serve.live.*` counters, gauges and latency histograms plus a
//!   flight-recorder ring, snapshotable over the wire as a versioned
//!   [`ServeSnapshot`] (the `conncar stats` / `conncar top` dashboards)
//!   without stopping — or even locking against — the hot path.
//!
//! Everything observable is deterministic: request and value encodings,
//! epoch formation, cache eviction (logical ticks, not wall time), and
//! the engine's `serve.*` counters — a fixed workload seed yields a
//! byte-identical `SERVE_OBS.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod metrics;
pub mod request;
pub mod server;
pub mod stats;
pub mod sync;
pub mod wire;
pub mod workload;

pub use cache::{CacheKey, ResultCache};
pub use client::ServeClient;
pub use engine::{QueryResponse, QueryService, ServeEngine, ServeHandle};
pub use metrics::{MetricsConfig, ServeMetrics, METRIC_REGISTRY};
pub use request::{Aggregation, QueryRequest, QueryValue};
pub use server::ServeServer;
pub use stats::{ServeSnapshot, STATS_VERSION};
pub use workload::{WorkloadSpec, WorkloadTargets};

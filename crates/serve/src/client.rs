//! In-process client for the framed TCP protocol.

use crate::engine::QueryResponse;
use crate::request::QueryRequest;
use crate::stats::{encode_stats_request, ServeSnapshot};
use crate::wire::{decode_response, read_frame, write_frame};
use conncar_types::{Error, Result};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected client. One request in flight at a time per connection
/// (the protocol is strictly request/response); open more clients for
/// concurrency.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connect to a running [`crate::ServeServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient { stream })
    }

    /// Send one request and block for its response. Server-side
    /// refusals come back as the same typed errors the engine raised.
    pub fn query(&mut self, req: &QueryRequest) -> Result<QueryResponse> {
        write_frame(&mut self.stream, &req.encode())?;
        match read_frame(&mut self.stream)? {
            Some(payload) => decode_response(&payload),
            None => Err(Error::Io("server closed the connection".into())),
        }
    }

    /// Fetch the server's live metrics snapshot. Stats frames bypass
    /// the scheduler queue, so this works even while query admission is
    /// refusing with `Overloaded`.
    pub fn stats(&mut self) -> Result<ServeSnapshot> {
        write_frame(&mut self.stream, &encode_stats_request())?;
        match read_frame(&mut self.stream)? {
            Some(payload) => {
                // An error reply is a response payload (status byte 1),
                // which can never open a snapshot: its version byte
                // would be 1 with a non-snapshot body, so decode fails
                // and the typed error surfaces instead.
                match ServeSnapshot::decode(&payload) {
                    Ok(snap) => Ok(snap),
                    Err(snap_err) => match decode_response(&payload) {
                        Err(e) => Err(e),
                        Ok(_) => Err(snap_err),
                    },
                }
            }
            None => Err(Error::Io("server closed the connection".into())),
        }
    }
}

//! Loom models of the [`QueryService`] scheduler protocol.
//!
//! These tests compile only under `RUSTFLAGS="--cfg loom"` (the CI
//! `loom` job); a normal `cargo test` sees an empty file. They model
//! the `ServiceShared` protocol from `crates/serve/src/engine.rs` —
//! a `Mutex<{queue, open}>` + `Condvar` wake, bounded admission, a
//! scheduler that drains batches until closed-and-empty — with loom's
//! permutation-exploring primitives, checking every interleaving of:
//!
//! * **no lost or duplicated jobs** — everything submitters enqueue is
//!   drained exactly once, FIFO;
//! * **the admission bound** — a full queue rejects instead of
//!   growing, under any interleaving;
//! * **shutdown/wake** — closing admission while the scheduler is (or
//!   is about to be) parked in `wait` never deadlocks and never strands
//!   a queued job.
//!
//! The model intentionally mirrors the product code's protocol shape
//! (same lock, same wait condition `queue.is_empty() && open`, same
//! drain-then-exit rule) rather than instrumenting the engine itself:
//! the scheduling property under test lives entirely in this protocol,
//! and the engine's batch execution is deterministic single-threaded
//! code already covered by the scheduler property tests.
//!
//! [`QueryService`]: conncar_serve::QueryService
#![cfg(loom)]

use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;
use std::collections::VecDeque;

/// The modelled `ServiceShared`: same fields, same protocol.
struct Shared {
    state: Mutex<State>,
    wake: Condvar,
    queue_limit: usize,
}

struct State {
    queue: VecDeque<u32>,
    open: bool,
}

impl Shared {
    fn new(queue_limit: usize) -> Shared {
        Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                open: true,
            }),
            wake: Condvar::new(),
            queue_limit,
        }
    }

    /// `ServeHandle::submit`: admit or reject, then notify.
    fn submit(&self, job: u32) -> bool {
        {
            let mut state = self.state.lock().unwrap();
            if !state.open || state.queue.len() >= self.queue_limit {
                return false;
            }
            state.queue.push_back(job);
        }
        self.wake.notify_all();
        true
    }

    /// `QueryService::shutdown`'s first half: close admission, wake.
    fn close(&self) {
        {
            let mut state = self.state.lock().unwrap();
            state.open = false;
        }
        self.wake.notify_all();
    }

    /// The scheduler loop: park while empty-and-open, drain up to
    /// `epoch_max` per round, exit once closed and drained.
    fn run_scheduler(&self, epoch_max: usize) -> Vec<u32> {
        let mut drained = Vec::new();
        loop {
            let batch: Vec<u32> = {
                let mut state = self.state.lock().unwrap();
                while state.queue.is_empty() && state.open {
                    state = self.wake.wait(state).unwrap();
                }
                if state.queue.is_empty() {
                    break;
                }
                let n = state.queue.len().min(epoch_max);
                state.queue.drain(..n).collect()
            };
            drained.extend(batch);
        }
        drained
    }
}

#[test]
fn every_submitted_job_is_drained_exactly_once_fifo_per_submitter() {
    loom::model(|| {
        let shared = Arc::new(Shared::new(8));
        let submitters: Vec<_> = (0..2)
            .map(|s| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    // Jobs 10s+0, 10s+1 from submitter s, in order.
                    for j in 0..2u32 {
                        assert!(shared.submit(10 * s + j), "queue_limit 8 never fills");
                    }
                })
            })
            .collect();
        let sched = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || shared.run_scheduler(2))
        };
        for s in submitters {
            s.join().unwrap();
        }
        shared.close();
        let drained = sched.join().unwrap();

        // Exactly-once delivery...
        let mut sorted = drained.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 10, 11]);
        // ...and FIFO per submitter: 0 before 1, 10 before 11.
        for base in [0u32, 10] {
            let first = drained.iter().position(|&j| j == base).unwrap();
            let second = drained.iter().position(|&j| j == base + 1).unwrap();
            assert!(first < second, "submitter order inverted: {drained:?}");
        }
    });
}

#[test]
fn admission_bound_holds_under_every_interleaving() {
    loom::model(|| {
        let shared = Arc::new(Shared::new(1));
        let submitters: Vec<_> = (0..2)
            .map(|s| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || shared.submit(s))
            })
            .collect();
        let admitted: usize = submitters
            .into_iter()
            .map(|t| usize::from(t.join().unwrap()))
            .sum();
        // With no scheduler draining, a bound of 1 admits exactly one
        // of two concurrent submitters in some interleavings and both
        // sequentially in none (the queue never shrinks here).
        assert!(admitted >= 1, "at least one submission must land");
        let state = shared.state.lock().unwrap();
        assert!(state.queue.len() <= 1, "bound breached: {}", state.queue.len());
        assert_eq!(state.queue.len(), admitted, "admits must match queue");
    });
}

#[test]
fn shutdown_never_deadlocks_and_never_strands_a_job() {
    loom::model(|| {
        let shared = Arc::new(Shared::new(4));
        let sched = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || shared.run_scheduler(4))
        };
        let submitter = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || shared.submit(7))
        };
        let landed = submitter.join().unwrap();
        // Close can race the scheduler's park/drain arbitrarily; the
        // protocol must still terminate with the queue empty.
        shared.close();
        let drained = sched.join().unwrap();
        if landed {
            assert_eq!(drained, vec![7], "admitted job was stranded");
        } else {
            assert!(drained.is_empty());
        }
        assert!(shared.state.lock().unwrap().queue.is_empty());
    });
}

//! Property tests: the shared-scan scheduler is indistinguishable from
//! running every query alone.
//!
//! Satellite requirement: any batch of random [`QueryRequest`]s pushed
//! through the engine (epoch batching + shared scans + coalescing +
//! cache) returns results **byte-identical** to executing each request
//! standalone through the `scan_fold`-based reference path
//! ([`QueryRequest::execute_single`]), across shard counts {1, 2, 7} —
//! and the answers themselves never depend on the shard count.

use conncar_cdr::{CdrDataset, CdrRecord};
use conncar_obs::NullClock;
use conncar_serve::{Aggregation, QueryRequest, ServeEngine};
use conncar_store::{CdrStore, Filter};
use conncar_types::{BaseStationId, CarId, Carrier, CellId, DayOfWeek, StudyPeriod, Timestamp};
use proptest::prelude::*;
use std::sync::Arc;

const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

/// Raw fuzzed rows → a dataset over a one-week period.
fn dataset(raw: &[(u32, u32, u64, u64)]) -> CdrDataset {
    let records: Vec<CdrRecord> = raw
        .iter()
        .map(|&(car, station, start, dur)| CdrRecord {
            car: CarId(car),
            cell: CellId::new(
                BaseStationId(station),
                (station % 3) as u8,
                if station % 2 == 0 { Carrier::C3 } else { Carrier::C1 },
            ),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(start + dur),
        })
        .collect();
    CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records)
}

/// Raw fuzzed request descriptor → a valid [`QueryRequest`]. The
/// descriptor space covers every aggregation kind and the main filter
/// shapes (point car, cell, window, full scan).
fn request(desc: &(u8, u32, u32, u64, u64)) -> QueryRequest {
    let &(kind, car, station, w0, wlen) = desc;
    let cell = CellId::new(
        BaseStationId(station),
        (station % 3) as u8,
        if station % 2 == 0 { Carrier::C3 } else { Carrier::C1 },
    );
    let window = (
        Timestamp::from_secs(w0),
        Timestamp::from_secs(w0 + wlen.max(1)),
    );
    match kind % 8 {
        0 => QueryRequest::new(Filter::all().car(CarId(car)), Aggregation::Rows),
        1 => QueryRequest::new(
            Filter::all().car(CarId(car)).window(window.0, window.1),
            Aggregation::Count,
        ),
        2 => QueryRequest::new(Filter::all().cell(cell), Aggregation::Count),
        3 => QueryRequest::new(
            Filter::all().window(window.0, window.1),
            Aggregation::PerCarSeconds,
        ),
        4 => QueryRequest::new(
            Filter::all().cell(cell),
            Aggregation::CellBinHistogram { bin_limit: 7 * 96 },
        ),
        5 => QueryRequest::new(Filter::all(), Aggregation::Count),
        6 => QueryRequest::new(
            Filter::all().window(window.0, window.1),
            Aggregation::Rows,
        ),
        _ => QueryRequest::new(
            Filter::all(),
            Aggregation::CellBinHistogram { bin_limit: 7 * 96 },
        ),
    }
}

proptest! {
    #[test]
    fn scheduled_batches_match_standalone_execution(
        raw in proptest::collection::vec((0u32..60, 0u32..12, 0u64..590_000, 1u64..3_000), 0..120),
        descs in proptest::collection::vec((0u8..8, 0u32..60, 0u32..12, 0u64..500_000, 1u64..200_000), 1..14),
        epoch_max in 1usize..6,
    ) {
        let ds = dataset(&raw);
        let reqs: Vec<QueryRequest> = descs.iter().map(request).collect();
        let mut baseline: Option<Vec<Vec<u8>>> = None;
        for &shards in &SHARD_COUNTS {
            let store = Arc::new(CdrStore::build_with_clock(&ds, shards, Arc::new(NullClock)));
            // Reference: every request alone through the scan_fold path.
            let singles: Vec<Vec<u8>> = reqs
                .iter()
                .map(|r| r.execute_single(&store).0.encode())
                .collect();
            // Scheduler: one batch through epochs + shared scans + cache.
            let mut engine = ServeEngine::new(Arc::clone(&store), 32, epoch_max);
            let scheduled: Vec<Vec<u8>> = engine
                .submit_batch(&reqs)
                .into_iter()
                .map(|r| r.expect("valid request").value.encode())
                .collect();
            prop_assert_eq!(&scheduled, &singles,
                "scheduler must be byte-identical to standalone at shards={}", shards);
            // And byte-identical across shard counts.
            match &baseline {
                None => baseline = Some(scheduled),
                Some(b) => prop_assert_eq!(&scheduled, b,
                    "answers must not depend on shard count (shards={})", shards),
            }
        }
    }

    #[test]
    fn resubmitting_through_the_cache_is_still_byte_identical(
        raw in proptest::collection::vec((0u32..40, 0u32..8, 0u64..590_000, 1u64..3_000), 0..80),
        desc in (0u8..8, 0u32..40, 0u32..8, 0u64..500_000, 1u64..200_000),
    ) {
        let ds = dataset(&raw);
        let req = request(&desc);
        let store = Arc::new(CdrStore::build_with_clock(&ds, 7, Arc::new(NullClock)));
        let want = req.execute_single(&store).0.encode();
        let mut engine = ServeEngine::new(store, 8, 4);
        let first = engine.submit(&req).expect("valid");
        let second = engine.submit(&req).expect("valid");
        prop_assert!(!first.cache_hit);
        prop_assert!(second.cache_hit, "identical resubmission must hit");
        prop_assert_eq!(first.value.encode(), want.clone());
        prop_assert_eq!(second.value.encode(), want);
    }
}

//! End-to-end: the framed TCP front door serves real sockets.
//!
//! Starts a [`ServeServer`] on an ephemeral loopback port, drives it
//! with concurrent [`ServeClient`] connections, and checks that every
//! wire answer is byte-identical to standalone execution, that typed
//! refusals survive the round trip, and that shutdown returns the
//! engine with coherent counters.

use conncar_cdr::{CdrDataset, CdrRecord};
use conncar_obs::NullClock;
use conncar_serve::engine::keys;
use conncar_serve::{Aggregation, QueryRequest, ServeClient, ServeEngine, ServeServer};
use conncar_store::{CdrStore, Filter};
use conncar_types::{
    BaseStationId, CarId, Carrier, CellId, DayOfWeek, Error, StudyPeriod, Timestamp,
};
use std::sync::Arc;
use std::thread;

fn sample_store(shards: usize) -> Arc<CdrStore> {
    let records = (0..600)
        .map(|i| CdrRecord {
            car: CarId(i % 29),
            cell: CellId::new(BaseStationId(i % 7), (i % 3) as u8, Carrier::C3),
            start: Timestamp::from_secs(u64::from(i) * 881 % 550_000),
            end: Timestamp::from_secs(u64::from(i) * 881 % 550_000 + 45),
        })
        .collect();
    let ds = CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records);
    Arc::new(CdrStore::build_with_clock(&ds, shards, Arc::new(NullClock)))
}

#[test]
fn concurrent_clients_get_byte_identical_answers() {
    let store = sample_store(8);
    let engine = ServeEngine::new(Arc::clone(&store), 64, 8);
    let server = ServeServer::bind("127.0.0.1:0", engine, 3, 256).expect("bind");
    let addr = server.local_addr();

    let clients: Vec<_> = (0..6)
        .map(|t| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                for k in 0..5u32 {
                    let req = match (t + k) % 4 {
                        0 => QueryRequest::new(
                            Filter::all().car(CarId((t * 5 + k) % 29)),
                            Aggregation::Rows,
                        ),
                        1 => QueryRequest::new(Filter::all(), Aggregation::Count),
                        2 => QueryRequest::new(Filter::all(), Aggregation::PerCarSeconds),
                        _ => QueryRequest::new(
                            Filter::all().cell(CellId::new(
                                BaseStationId((t + k) % 7),
                                0,
                                Carrier::C3,
                            )),
                            Aggregation::CellBinHistogram { bin_limit: 7 * 96 },
                        ),
                    };
                    let resp = client.query(&req).expect("served");
                    let (want, _) = req.execute_single(&store);
                    assert_eq!(
                        resp.value.encode(),
                        want.encode(),
                        "wire answer must be byte-identical to standalone"
                    );
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    let engine = server.shutdown().expect("clean shutdown");
    assert_eq!(engine.counters().get(keys::QUERIES), 30);
    assert_eq!(engine.counters().get(keys::REJECTED), 0);
    // The workload repeats requests across clients, so the cache and/or
    // coalescing must have absorbed some of them.
    let absorbed =
        engine.counters().get(keys::CACHE_HITS) + engine.counters().get(keys::COALESCED);
    assert!(absorbed > 0, "repeated requests should hit or coalesce");
}

#[test]
fn typed_refusals_cross_the_wire() {
    let store = sample_store(2);
    let server =
        ServeServer::bind("127.0.0.1:0", ServeEngine::new(store, 4, 4), 1, 16).expect("bind");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let inverted = QueryRequest::new(
        Filter::all().window(Timestamp::from_secs(100), Timestamp::from_secs(10)),
        Aggregation::Count,
    );
    match client.query(&inverted) {
        Err(Error::InvalidFilter { what, .. }) => assert_eq!(what, "window"),
        other => panic!("expected typed InvalidFilter, got {other:?}"),
    }

    // The connection survives a refusal: the next query still works.
    let ok = QueryRequest::new(Filter::all(), Aggregation::Count);
    let resp = client.query(&ok).expect("served after refusal");
    assert!(matches!(resp.value, conncar_serve::QueryValue::Count(600)));

    let engine = server.shutdown().expect("clean shutdown");
    assert_eq!(engine.counters().get(keys::REJECTED), 1);
}

#[test]
fn cache_hits_are_flagged_over_the_wire() {
    let store = sample_store(4);
    let server =
        ServeServer::bind("127.0.0.1:0", ServeEngine::new(store, 16, 4), 2, 32).expect("bind");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    let req = QueryRequest::new(Filter::all(), Aggregation::PerCarSeconds);
    let first = client.query(&req).expect("first");
    let second = client.query(&req).expect("second");
    assert!(!first.cache_hit);
    assert!(second.cache_hit, "identical re-query must be a cache hit");
    assert_eq!(first.value, second.value);
    assert_eq!(
        first.stats.shards_scanned, second.stats.shards_scanned,
        "a hit reports the original computation's stats"
    );
    server.shutdown().expect("clean shutdown");
}

#[test]
fn malformed_frames_get_an_error_response() {
    use conncar_serve::wire::{read_frame, write_frame};
    use std::net::TcpStream;

    let store = sample_store(2);
    let server =
        ServeServer::bind("127.0.0.1:0", ServeEngine::new(store, 4, 4), 1, 16).expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    write_frame(&mut stream, &[0xFF, 0xEE]).expect("send garbage");
    let payload = read_frame(&mut stream).expect("read").expect("frame");
    assert_eq!(payload[0], 1, "garbage must produce an error response");
    server.shutdown().expect("clean shutdown");
}

#[test]
fn stats_snapshot_crosses_the_wire() {
    use conncar_serve::metrics::event;
    use conncar_serve::{ServeSnapshot, STATS_VERSION};

    let store = sample_store(4);
    let generation = store.generation();
    let engine = ServeEngine::new(Arc::clone(&store), 16, 4);
    let server = ServeServer::bind("127.0.0.1:0", engine, 2, 32).expect("bind");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let req = QueryRequest::new(Filter::all(), Aggregation::Count);
    client.query(&req).expect("first");
    client.query(&req).expect("second");

    let snap = client.stats().expect("stats over the wire");
    assert_eq!(snap.version, STATS_VERSION);
    assert_eq!(snap.generation, generation, "snapshot names the served store");
    assert_eq!(snap.counter("serve.live.queries"), 2);
    assert_eq!(snap.counter("serve.live.cache_hits"), 1, "re-query hits");
    assert_eq!(snap.counter("serve.live.cache_misses"), 1);
    assert!(
        snap.histogram("serve.live.e2e_ns").is_some_and(|h| h.count >= 1),
        "every served query lands in the end-to-end histogram"
    );
    assert!(
        snap.events.iter().any(|e| e.code == event::ADMIT),
        "admissions reach the flight recorder"
    );
    assert!(
        snap.events.iter().any(|e| e.code == event::CACHE_HIT),
        "the cache hit reaches the flight recorder"
    );

    // The wire copy is canonical: it survives a local re-encode cycle.
    let back = ServeSnapshot::decode(&snap.encode()).expect("re-decode");
    assert_eq!(back, snap);

    // Stats are read-only: asking again must not perturb the counters.
    let again = client.stats().expect("second stats fetch");
    assert_eq!(again.counter("serve.live.queries"), 2);

    server.shutdown().expect("clean shutdown");
}

#[test]
fn shutdown_is_idempotent_under_no_traffic() {
    let store = sample_store(2);
    let server =
        ServeServer::bind("127.0.0.1:0", ServeEngine::new(store, 4, 4), 4, 16).expect("bind");
    let engine = server.shutdown().expect("clean shutdown");
    assert_eq!(engine.counters().get(keys::QUERIES), 0);
}

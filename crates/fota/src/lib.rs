//! # conncar-fota
//!
//! Firmware-over-the-air campaign planning — the application the paper's
//! measurements exist to inform.
//!
//! The introduction frames the problem: updates are large (megabytes to
//! gigabytes), time-critical (safety recalls), and must reach cars whose
//! network windows are short and commute-peaked; pushing them carelessly
//! "during peak hours" harms everyone sharing the cell. §4.3 sketches
//! the managed answer: prioritize *rare* cars whenever they appear,
//! schedule *common* cars around busy hours, and treat busy-hour-bound
//! cars specially.
//!
//! This crate turns those sketches into executable policies and measures
//! them against the synthetic trace:
//!
//! * [`policy`] — when may a given car download in a given cell/bin;
//! * [`sim`] — replay a campaign over the CDR trace, metering download
//!   progress by each serving cell's free capacity;
//! * [`greedy`] — the Figure 1 field experiment: one greedy device
//!   saturating a production cell for four hours.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod greedy;
pub mod policy;
pub mod sim;

pub use greedy::{greedy_saturation, GreedyExperiment, GreedyResult};
pub use policy::{CampaignPolicy, PolicyContext};
pub use sim::{CampaignConfig, CampaignResult, CampaignSimulator, RolloutPlan};

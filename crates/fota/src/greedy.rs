//! The Figure 1 experiment: a single greedy download saturates a cell.
//!
//! The paper opens §4 with a field test: at 20:45 UTC one device starts
//! a continuous download in each of two cells and keeps it up for four
//! hours; PRB utilization pins at ~100% for the duration, against the
//! cells' ordinary diurnal average. We reproduce it against the
//! simulated RAN: inject a [`TransferKind::Greedy`] load into two busy
//! cells on a chosen day and report both the test-day series and the
//! average-day baseline.

use conncar_analysis::busy::NetworkLoadModel;
use conncar_radio::{BackgroundLoad, CellClass, PrbLedger, TransferKind};
use conncar_types::{BinIndex, CellId, Duration, TimeOfDay, Timestamp, BINS_PER_DAY};
use serde::{Deserialize, Serialize};

/// Experiment parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GreedyExperiment {
    /// The two cells under test.
    pub cells: [CellId; 2],
    /// Day the test runs on.
    pub test_day: u64,
    /// Download start time (paper: 20:45 UTC).
    pub start: TimeOfDay,
    /// Download duration (paper: 4 hours).
    pub duration: Duration,
}

impl GreedyExperiment {
    /// The paper's configuration on a given pair of cells and day.
    pub fn paper(cells: [CellId; 2], test_day: u64) -> GreedyExperiment {
        GreedyExperiment {
            cells,
            test_day,
            start: TimeOfDay::new(20, 45, 0).expect("valid"),
            duration: Duration::from_hours(4),
        }
    }
}

/// Figure 1's two series per cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GreedyResult {
    /// The experiment parameters.
    pub experiment: GreedyExperiment,
    /// Per cell: `U_PRB` over the 96 bins of the test day.
    pub test_series: [Vec<f64>; 2],
    /// Per cell: `U_PRB` averaged over every *other* day of the study.
    pub average_series: [Vec<f64>; 2],
}

impl GreedyResult {
    /// Mean test-window utilization of cell `i` on the test day.
    pub fn test_window_mean(&self, i: usize) -> f64 {
        let first = (self.experiment.start.as_secs() as usize) / 900;
        let bins = (self.experiment.duration.as_secs() as usize / 900)
            .min(BINS_PER_DAY - first);
        if bins == 0 {
            return 0.0;
        }
        self.test_series[i][first..first + bins].iter().sum::<f64>() / bins as f64
    }

    /// Mean utilization of the same window on an average day.
    pub fn baseline_window_mean(&self, i: usize) -> f64 {
        let first = (self.experiment.start.as_secs() as usize) / 900;
        let bins = (self.experiment.duration.as_secs() as usize / 900)
            .min(BINS_PER_DAY - first);
        if bins == 0 {
            return 0.0;
        }
        self.average_series[i][first..first + bins].iter().sum::<f64>() / bins as f64
    }
}

/// Run the experiment: inject the greedy download on top of the existing
/// car load and background, then extract the two series.
///
/// `ledger` is cloned internally — the caller's trace is untouched.
pub fn greedy_saturation(
    exp: &GreedyExperiment,
    ledger: &PrbLedger,
    background: &BackgroundLoad,
    classes: [CellClass; 2],
) -> GreedyResult {
    let mut loaded = ledger.clone();
    let t0 = Timestamp::from_day_and_secs(exp.test_day, exp.start.as_secs() as u64);
    let t1 = t0 + exp.duration;
    for cell in exp.cells {
        loaded.add_transfer_load(cell, t0, t1, TransferKind::Greedy);
    }
    let period = ledger.period();
    let days = period.days() as u64;
    let mut test_series: [Vec<f64>; 2] = [vec![0.0; BINS_PER_DAY], vec![0.0; BINS_PER_DAY]];
    let mut average_series: [Vec<f64>; 2] = [vec![0.0; BINS_PER_DAY], vec![0.0; BINS_PER_DAY]];
    for (i, cell) in exp.cells.into_iter().enumerate() {
        for db in 0..BINS_PER_DAY {
            let mut other_sum = 0.0;
            for day in 0..days {
                let bin = BinIndex(day * BINS_PER_DAY as u64 + db as u64);
                let u = loaded.utilization(cell, classes[i], bin, background);
                if day == exp.test_day {
                    test_series[i][db] = u;
                } else {
                    other_sum += u;
                }
            }
            average_series[i][db] = if days > 1 {
                other_sum / (days - 1) as f64
            } else {
                0.0
            };
        }
    }
    GreedyResult {
        experiment: exp.clone(),
        test_series,
        average_series,
    }
}

/// Helper used by the harness: a [`NetworkLoadModel`] already knows each
/// cell's class; pull the pair out for [`greedy_saturation`].
pub fn classes_for(model: &NetworkLoadModel<'_>, cells: [CellId; 2]) -> [CellClass; 2] {
    [model.class_of(cells[0]), model.class_of(cells[1])]
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_radio::BackgroundLoadConfig;
    use conncar_types::{BaseStationId, Carrier, DayOfWeek, StudyPeriod};

    fn setup() -> (PrbLedger, BackgroundLoad, [CellId; 2]) {
        let period = StudyPeriod::new(DayOfWeek::Monday, 14).unwrap();
        let ledger = PrbLedger::new(period);
        let bg = BackgroundLoad::new(BackgroundLoadConfig::default(), period, 0);
        let cells = [
            CellId::new(BaseStationId(3), 0, Carrier::C3),
            CellId::new(BaseStationId(7), 1, Carrier::C1),
        ];
        (ledger, bg, cells)
    }

    #[test]
    fn greedy_window_saturates_both_cells() {
        let (ledger, bg, cells) = setup();
        let exp = GreedyExperiment::paper(cells, 2);
        let r = greedy_saturation(
            &exp,
            &ledger,
            &bg,
            [CellClass::Business, CellClass::Residential],
        );
        for i in 0..2 {
            let test = r.test_window_mean(i);
            let base = r.baseline_window_mean(i);
            assert!(test > 0.99, "cell {i} test-window mean {test}");
            assert!(base < 0.95, "cell {i} baseline {base}");
            assert!(test > base + 0.1);
        }
    }

    #[test]
    fn outside_the_window_test_day_matches_ordinary_load() {
        let (ledger, bg, cells) = setup();
        let exp = GreedyExperiment::paper(cells, 2);
        let r = greedy_saturation(
            &exp,
            &ledger,
            &bg,
            [CellClass::Business, CellClass::Business],
        );
        // 10:00 bin (index 40) is far from the 20:45 window; the test
        // day should look like any other day there (within noise).
        let diff = (r.test_series[0][40] - r.average_series[0][40]).abs();
        assert!(diff < 0.15, "off-window divergence {diff}");
    }

    #[test]
    fn series_shapes() {
        let (ledger, bg, cells) = setup();
        let exp = GreedyExperiment::paper(cells, 0);
        let r = greedy_saturation(
            &exp,
            &ledger,
            &bg,
            [CellClass::Business, CellClass::Business],
        );
        for s in r.test_series.iter().chain(r.average_series.iter()) {
            assert_eq!(s.len(), 96);
            for &v in s {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        // 20:45 is bin 83; saturation starts there.
        assert!(r.test_series[0][83] > 0.99);
        assert!(r.test_series[0][82] < 1.0);
    }

    #[test]
    fn caller_ledger_is_untouched() {
        let (ledger, bg, cells) = setup();
        let exp = GreedyExperiment::paper(cells, 2);
        let _ = greedy_saturation(
            &exp,
            &ledger,
            &bg,
            [CellClass::Business, CellClass::Business],
        );
        assert_eq!(ledger.touched_count(), 0);
    }
}

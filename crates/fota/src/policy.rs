//! Campaign scheduling policies.
//!
//! A policy answers one question, record by record: *may this car pull
//! update bytes right now, through this cell?* Policies see the same
//! observables the operator would have: current cell utilization, the
//! car's rarity segment, and its learned weekly pattern.

use conncar_analysis::predict::CarPredictor;
use conncar_analysis::segmentation::CarBusyProfile;
use conncar_types::{CarId, CellId, DayOfWeek, Timestamp, TimeZone};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Everything a policy may consult for one allow/deny decision.
#[derive(Debug, Clone, Copy)]
pub struct PolicyContext<'a> {
    /// The car asking to download.
    pub car: CarId,
    /// The serving cell.
    pub cell: CellId,
    /// Decision instant.
    pub now: Timestamp,
    /// Serving cell's `U_PRB` in the current 15-minute bin.
    pub utilization: f64,
    /// The car's rarity/busy profile from the measurement study, when
    /// known.
    pub profile: Option<&'a CarBusyProfile>,
    /// The car's trained appearance predictor, when the policy uses one.
    pub predictor: Option<&'a CarPredictor>,
    /// The car's local time zone.
    pub tz: TimeZone,
    /// Weekday of study day 0 (to resolve `now` to a weekday).
    pub start_day: DayOfWeek,
}

impl PolicyContext<'_> {
    /// Local (weekday, hour) of the decision instant.
    pub fn local_slot(&self) -> (DayOfWeek, u8) {
        let local = self.tz.to_local(self.now);
        let weekday = self.start_day.plus(local.day() as usize);
        (weekday, local.hour())
    }
}

/// The campaign policies of §4.3's design space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CampaignPolicy {
    /// Push bytes whenever the car is connected — the naive baseline
    /// whose busy-hour impact Figure 1 warns about.
    Immediate,
    /// Only download through cells below a utilization ceiling.
    OffPeak {
        /// Maximum cell utilization at which downloads proceed.
        max_utilization: f64,
    },
    /// Rare cars (≤ `rare_cutoff_days` active days) download whenever
    /// they appear — their windows are precious; common cars defer to
    /// off-peak cells.
    RareFirst {
        /// Rarity cutoff in active days.
        rare_cutoff_days: u32,
        /// Utilization ceiling applied to common cars.
        max_utilization: f64,
    },
    /// Download only in hours the car's predictor marks as reliable
    /// *and* through non-busy cells; cars with no usable prediction
    /// fall back to the off-peak rule.
    Predictive {
        /// Minimum predicted appearance probability for a planned slot.
        min_probability: f64,
        /// Utilization ceiling.
        max_utilization: f64,
    },
}

impl CampaignPolicy {
    /// Short label for reports and benches.
    pub fn label(&self) -> &'static str {
        match self {
            CampaignPolicy::Immediate => "immediate",
            CampaignPolicy::OffPeak { .. } => "off-peak",
            CampaignPolicy::RareFirst { .. } => "rare-first",
            CampaignPolicy::Predictive { .. } => "predictive",
        }
    }

    /// The allow/deny decision.
    pub fn allows(&self, ctx: &PolicyContext<'_>) -> bool {
        match self {
            CampaignPolicy::Immediate => true,
            CampaignPolicy::OffPeak { max_utilization } => ctx.utilization <= *max_utilization,
            CampaignPolicy::RareFirst {
                rare_cutoff_days,
                max_utilization,
            } => {
                let rare = ctx
                    .profile
                    .map(|p| p.days_active <= *rare_cutoff_days)
                    // Unknown cars are treated as rare: missing them is
                    // worse than a little peak traffic.
                    .unwrap_or(true);
                rare || ctx.utilization <= *max_utilization
            }
            CampaignPolicy::Predictive {
                min_probability,
                max_utilization,
            } => {
                if ctx.utilization > *max_utilization {
                    return false;
                }
                match ctx.predictor {
                    Some(pred) => {
                        let (day, hour) = ctx.local_slot();
                        // Reliable slot: the car is expected here, so the
                        // operator pre-staged capacity for it. Unreliable
                        // slot: skip, a better window is predicted.
                        pred.predicts(day, hour, *min_probability)
                            // A car with no reliable slots at all must
                            // not starve: serve it opportunistically.
                            || pred.probabilities.max() < *min_probability
                    }
                    None => true,
                }
            }
        }
    }
}

/// Per-car lookup tables handed to the simulator.
#[derive(Debug, Default)]
pub struct PolicyInputs {
    /// Profiles by car.
    pub profiles: HashMap<CarId, CarBusyProfile>,
    /// Predictors by car.
    pub predictors: HashMap<CarId, CarPredictor>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::{BaseStationId, Carrier};

    fn ctx<'a>(
        util: f64,
        profile: Option<&'a CarBusyProfile>,
        predictor: Option<&'a CarPredictor>,
    ) -> PolicyContext<'a> {
        PolicyContext {
            car: CarId(1),
            cell: CellId::new(BaseStationId(1), 0, Carrier::C3),
            now: Timestamp::from_day_hms(0, 13, 0, 0),
            utilization: util,
            profile,
            predictor,
            tz: TimeZone::UTC,
            start_day: DayOfWeek::Monday,
        }
    }

    fn profile(days: u32) -> CarBusyProfile {
        CarBusyProfile {
            car: CarId(1),
            days_active: days,
            busy_secs: 0,
            total_secs: 100,
        }
    }

    #[test]
    fn immediate_always_allows() {
        assert!(CampaignPolicy::Immediate.allows(&ctx(0.99, None, None)));
    }

    #[test]
    fn off_peak_gates_on_utilization() {
        let p = CampaignPolicy::OffPeak {
            max_utilization: 0.7,
        };
        assert!(p.allows(&ctx(0.5, None, None)));
        assert!(!p.allows(&ctx(0.9, None, None)));
        assert!(p.allows(&ctx(0.7, None, None)));
    }

    #[test]
    fn rare_first_lets_rare_cars_through_peaks() {
        let p = CampaignPolicy::RareFirst {
            rare_cutoff_days: 10,
            max_utilization: 0.7,
        };
        let rare = profile(5);
        let common = profile(60);
        assert!(p.allows(&ctx(0.95, Some(&rare), None)));
        assert!(!p.allows(&ctx(0.95, Some(&common), None)));
        assert!(p.allows(&ctx(0.5, Some(&common), None)));
        // Unknown car defaults to rare treatment.
        assert!(p.allows(&ctx(0.95, None, None)));
    }

    #[test]
    fn predictive_gates_on_slot_and_load() {
        use conncar_cdr::CdrRecord;
        use conncar_types::{Duration, StudyPeriod};
        // Car appears Monday 13:00 both training weeks.
        let records: Vec<CdrRecord> = (0..2u64)
            .map(|w| {
                let start = Timestamp::from_day_hms(w * 7, 13, 10, 0);
                CdrRecord {
                    car: CarId(1),
                    cell: CellId::new(BaseStationId(1), 0, Carrier::C3),
                    start,
                    end: start + Duration::from_mins(20),
                }
            })
            .collect();
        let period = StudyPeriod::new(DayOfWeek::Monday, 28).unwrap();
        let pred = CarPredictor::train(&records, period, TimeZone::UTC, 2);
        let p = CampaignPolicy::Predictive {
            min_probability: 0.8,
            max_utilization: 0.7,
        };
        // ctx() is Monday 13:00: reliable slot, low load → allow.
        assert!(p.allows(&ctx(0.4, None, Some(&pred))));
        // Busy cell vetoes regardless of slot.
        assert!(!p.allows(&ctx(0.9, None, Some(&pred))));
        // A different hour is not a reliable slot.
        let mut off_ctx = ctx(0.4, None, Some(&pred));
        off_ctx.now = Timestamp::from_day_hms(0, 3, 0, 0);
        assert!(!p.allows(&off_ctx));
        // No predictor: fall back to load-only gating.
        assert!(p.allows(&ctx(0.4, None, None)));
    }

    #[test]
    fn predictive_serves_unpredictable_cars_opportunistically() {
        let pred =
            CarPredictor::train(&[], conncar_types::StudyPeriod::PAPER, TimeZone::UTC, 2);
        let p = CampaignPolicy::Predictive {
            min_probability: 0.8,
            max_utilization: 0.7,
        };
        // No reliable slots at all → any quiet moment is fine.
        assert!(p.allows(&ctx(0.4, None, Some(&pred))));
    }

    #[test]
    fn local_slot_resolves_timezone() {
        let mut c = ctx(0.0, None, None);
        c.tz = TimeZone::US_EASTERN;
        // 13:00 UTC Monday = 08:00 Eastern Monday.
        assert_eq!(c.local_slot(), (DayOfWeek::Monday, 8));
    }

    #[test]
    fn labels() {
        assert_eq!(CampaignPolicy::Immediate.label(), "immediate");
        assert_eq!(
            CampaignPolicy::OffPeak {
                max_utilization: 0.5
            }
            .label(),
            "off-peak"
        );
    }
}

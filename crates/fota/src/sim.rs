//! Campaign simulation over a CDR trace.
//!
//! Replays the study's connection records in time order. Whenever a car
//! with an unfinished download is connected and its policy allows, it
//! pulls bytes at the serving cell's free capacity
//! ([`conncar_radio::available_throughput_mbps`]); progress accumulates
//! until the image is complete. The simulator meters the two costs the
//! paper cares about: *how fast the campaign completes* (rare cars'
//! windows are short) and *how many bytes land in busy cells* (pouring
//! oil onto the fire, §4.3).

use crate::policy::{CampaignPolicy, PolicyContext, PolicyInputs};
use conncar_analysis::busy::NetworkLoadModel;
use conncar_analysis::stats::Ecdf;
use conncar_cdr::CdrDataset;
use conncar_radio::available_throughput_mbps;
use conncar_types::{BinIndex, CarId, DayOfWeek, TimeZone};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Campaign parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Update image size, megabytes.
    pub image_mb: f64,
    /// The scheduling policy.
    pub policy: CampaignPolicy,
    /// Local time zone used for predictive slots.
    pub tz: TimeZone,
    /// Cap on a single car's share of a cell while updating (a scheduler
    /// never hands one UE the whole carrier when others are active).
    pub per_car_cap_mbps: f64,
    /// Wave plan deciding when each car becomes eligible.
    pub rollout: RolloutPlan,
    /// Whether delivered campaign bytes feed back into cell load:
    /// earlier downloads raise `U_PRB`, slowing later ones and flipping
    /// borderline bins busy. Costs one extra ledger clone per run.
    pub load_feedback: bool,
}

impl CampaignConfig {
    /// A typical map+firmware bundle on the default policy.
    pub fn new(image_mb: f64, policy: CampaignPolicy) -> CampaignConfig {
        CampaignConfig {
            image_mb,
            policy,
            tz: TimeZone::US_EASTERN,
            per_car_cap_mbps: 20.0,
            rollout: RolloutPlan::AllAtOnce,
            load_feedback: false,
        }
    }

    /// Enable campaign-load feedback.
    pub fn with_load_feedback(mut self) -> CampaignConfig {
        self.load_feedback = true;
        self
    }

    /// Replace the rollout plan.
    pub fn with_rollout(mut self, rollout: RolloutPlan) -> CampaignConfig {
        self.rollout = rollout;
        self
    }
}

/// When each car becomes *eligible* to start downloading.
///
/// Real FOTA campaigns never blast the whole fleet at once: a canary
/// wave catches bricking bugs, later waves spread the network load.
/// Cars are assigned a stable percentile by hashing their id; a stage
/// with `cumulative_fraction f` starting at `start_day d` makes every
/// car with percentile ≤ f eligible from day d on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RolloutPlan {
    /// Everyone is eligible immediately.
    AllAtOnce,
    /// Staged waves: `(start_day, cumulative_fraction)` pairs, sorted by
    /// day, fractions non-decreasing.
    Staged(Vec<(f64, f64)>),
}

impl RolloutPlan {
    /// A conventional three-wave plan: 2% canary immediately, 25% from
    /// `wave2_day`, everyone from `wave3_day`.
    pub fn canary(wave2_day: f64, wave3_day: f64) -> RolloutPlan {
        RolloutPlan::Staged(vec![(0.0, 0.02), (wave2_day, 0.25), (wave3_day, 1.0)])
    }

    /// First study day (fractional) on which a car at `percentile`
    /// (in `[0,1)`) may download; `None` if the plan never reaches it.
    pub fn eligible_from(&self, percentile: f64) -> Option<f64> {
        match self {
            RolloutPlan::AllAtOnce => Some(0.0),
            RolloutPlan::Staged(stages) => stages
                .iter()
                .find(|(_, frac)| percentile < *frac)
                .map(|(day, _)| *day),
        }
    }
}

/// Stable per-car rollout percentile in `[0, 1)`.
pub fn rollout_percentile(car: CarId) -> f64 {
    let mut z = (car.0 as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    z ^= z >> 29;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 32;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Campaign outcome metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Policy label.
    pub policy: String,
    /// Cars that completed the download within the study window.
    pub completed: usize,
    /// Cars targeted (every car that appears in the trace).
    pub targeted: usize,
    /// Days-to-completion distribution over completed cars.
    pub completion_days: Ecdf,
    /// Megabytes delivered through busy bins (`U_PRB >` model threshold).
    pub busy_mb: f64,
    /// Total megabytes delivered.
    pub total_mb: f64,
    /// Completions per study day (campaign progress curve).
    pub completions_per_day: Vec<u64>,
}

impl CampaignResult {
    /// Completion rate over targeted cars.
    pub fn completion_rate(&self) -> f64 {
        if self.targeted == 0 {
            0.0
        } else {
            self.completed as f64 / self.targeted as f64
        }
    }

    /// Fraction of delivered bytes that landed in busy cells.
    pub fn busy_byte_fraction(&self) -> f64 {
        if self.total_mb == 0.0 {
            0.0
        } else {
            self.busy_mb / self.total_mb
        }
    }

    /// Median days to complete, over completed cars.
    pub fn median_days(&self) -> Option<f64> {
        self.completion_days.median()
    }
}

/// Replays campaigns over a dataset.
#[derive(Debug)]
pub struct CampaignSimulator<'a> {
    ds: &'a CdrDataset,
    load: &'a NetworkLoadModel<'a>,
    inputs: &'a PolicyInputs,
    start_day: DayOfWeek,
}

impl<'a> CampaignSimulator<'a> {
    /// Build a simulator over a cleaned dataset and its load model.
    pub fn new(
        ds: &'a CdrDataset,
        load: &'a NetworkLoadModel<'a>,
        inputs: &'a PolicyInputs,
    ) -> CampaignSimulator<'a> {
        CampaignSimulator {
            ds,
            load,
            inputs,
            start_day: ds.period().start_day(),
        }
    }

    /// Run one campaign.
    pub fn run(&self, cfg: &CampaignConfig) -> conncar_types::Result<CampaignResult> {
        let mut remaining: HashMap<CarId, f64> = HashMap::new();
        let mut completion_days: Vec<f64> = Vec::new();
        let mut completions_per_day = vec![0u64; self.ds.period().days() as usize];
        let mut busy_mb = 0.0;
        let mut total_mb = 0.0;
        let mut targeted = 0usize;
        // Campaign-added utilization per (cell, bin) when feedback is on.
        let mut campaign_load: HashMap<(conncar_types::CellId, u64), f64> = HashMap::new();

        for (car, records) in self.ds.by_car() {
            targeted += 1;
            remaining.insert(car, cfg.image_mb);
            let mut left = cfg.image_mb;
            let Some(eligible_day) = cfg.rollout.eligible_from(rollout_percentile(car)) else {
                continue; // never reached by the wave plan
            };
            let eligible_secs = (eligible_day * 86_400.0) as u64;
            'records: for r in records {
                if r.end.as_secs() <= eligible_secs {
                    continue;
                }
                // Walk the record bin by bin: utilization (and thus both
                // the policy decision and the rate) is per-bin.
                for bin in BinIndex::covering(r.start, r.end) {
                    if bin.end().as_secs() <= eligible_secs {
                        continue;
                    }
                    let overlap = bin.overlap_secs(r.start, r.end);
                    if overlap == 0 {
                        continue;
                    }
                    let mut util = self.load.utilization(r.cell, bin);
                    if cfg.load_feedback {
                        if let Some(extra) = campaign_load.get(&(r.cell, bin.0)) {
                            util = (util + extra).min(1.0);
                        }
                    }
                    let ctx = PolicyContext {
                        car,
                        cell: r.cell,
                        now: bin.start().max(r.start),
                        utilization: util,
                        profile: self.inputs.profiles.get(&car),
                        predictor: self.inputs.predictors.get(&car),
                        tz: cfg.tz,
                        start_day: self.start_day,
                    };
                    if !cfg.policy.allows(&ctx) {
                        continue;
                    }
                    let rate_mbps =
                        available_throughput_mbps(r.cell.carrier, util).min(cfg.per_car_cap_mbps);
                    let mb = (rate_mbps / 8.0) * overlap as f64;
                    let delivered = mb.min(left);
                    left -= delivered;
                    total_mb += delivered;
                    if cfg.load_feedback && delivered > 0.0 {
                        // Convert delivered megabytes back into the
                        // fraction of the cell-bin's capacity they used.
                        let cap_mb =
                            r.cell.carrier.peak_throughput_mbps() as f64 / 8.0 * 900.0;
                        if cap_mb > 0.0 {
                            *campaign_load.entry((r.cell, bin.0)).or_default() +=
                                delivered / cap_mb;
                        }
                    }
                    if util > self.load.threshold() {
                        busy_mb += delivered;
                    }
                    if left <= 0.0 {
                        // Completion instant within this bin.
                        let secs_needed = delivered / (rate_mbps / 8.0);
                        let t = bin.start().max(r.start).as_secs() as f64 + secs_needed;
                        completion_days.push(t / 86_400.0);
                        let day_idx = ((t / 86_400.0) as usize)
                            .min(completions_per_day.len().saturating_sub(1));
                        if !completions_per_day.is_empty() {
                            completions_per_day[day_idx] += 1;
                        }
                        remaining.insert(car, 0.0);
                        break 'records;
                    }
                }
            }
            if left > 0.0 {
                remaining.insert(car, left);
            }
        }
        Ok(CampaignResult {
            policy: cfg.policy.label().to_string(),
            completed: completion_days.len(),
            targeted,
            completion_days: Ecdf::new(completion_days)?,
            busy_mb,
            total_mb,
            completions_per_day,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_cdr::CdrRecord;
    use conncar_geo::{Region, RegionConfig};
    use conncar_radio::{BackgroundLoad, BackgroundLoadConfig, PrbLedger};
    use conncar_types::{Carrier, CellId, Duration, StudyPeriod, Timestamp};

    struct Fixture {
        region: Region,
        ledger: PrbLedger,
        bg: BackgroundLoad,
        ds: CdrDataset,
    }

    fn fixture() -> Fixture {
        let region = Region::generate(&RegionConfig::small(), 42);
        let period = StudyPeriod::new(DayOfWeek::Monday, 14).unwrap();
        let ledger = PrbLedger::new(period);
        let bg = BackgroundLoad::new(BackgroundLoadConfig::default(), period, -5);
        // Three cars with daily half-hour overnight sessions on a C3
        // cell (quiet hours → off-peak friendly).
        let cell = CellId::new(region.deployment().stations()[0].id, 0, Carrier::C3);
        let mut records = Vec::new();
        for car in 0..3u32 {
            for day in 0..14u64 {
                let start = Timestamp::from_day_hms(day, 7 + car as u64, 0, 0);
                records.push(CdrRecord {
                    car: CarId(car),
                    cell,
                    start,
                    end: start + Duration::from_mins(30),
                });
            }
        }
        let ds = CdrDataset::new(period, records);
        Fixture {
            region,
            ledger,
            bg,
            ds,
        }
    }

    #[test]
    fn immediate_campaign_completes_everyone() {
        let f = fixture();
        let load = NetworkLoadModel::new(&f.ledger, &f.bg, f.region.deployment());
        let inputs = PolicyInputs::default();
        let sim = CampaignSimulator::new(&f.ds, &load, &inputs);
        let r = sim
            .run(&CampaignConfig::new(500.0, CampaignPolicy::Immediate))
            .unwrap();
        assert_eq!(r.targeted, 3);
        assert_eq!(r.completed, 3);
        assert_eq!(r.completion_rate(), 1.0);
        assert!(r.total_mb >= 1_499.0, "delivered {}", r.total_mb);
        // 500 MB at ≤20 Mbps needs ≥200 s: not instantaneous, completes
        // within the first day's session.
        assert!(r.median_days().unwrap() < 1.0);
    }

    #[test]
    fn bigger_images_take_longer() {
        let f = fixture();
        let load = NetworkLoadModel::new(&f.ledger, &f.bg, f.region.deployment());
        let inputs = PolicyInputs::default();
        let sim = CampaignSimulator::new(&f.ds, &load, &inputs);
        let small = sim
            .run(&CampaignConfig::new(100.0, CampaignPolicy::Immediate))
            .unwrap();
        let huge = sim
            .run(&CampaignConfig::new(20_000.0, CampaignPolicy::Immediate))
            .unwrap();
        assert!(huge.median_days().unwrap_or(99.0) > small.median_days().unwrap());
    }

    #[test]
    fn off_peak_avoids_busy_bytes() {
        let f = fixture();
        // Saturate the serving cell during the cars' sessions on days
        // 0–6 so Immediate pushes bytes into a busy cell but OffPeak
        // waits.
        let cell = f.ds.records()[0].cell;
        let mut ledger = f.ledger.clone();
        for day in 0..7u64 {
            ledger.add_load_fraction(
                cell,
                Timestamp::from_day_hms(day, 6, 0, 0),
                Timestamp::from_day_hms(day, 11, 0, 0),
                0.95,
            );
        }
        let load = NetworkLoadModel::new(&ledger, &f.bg, f.region.deployment());
        let inputs = PolicyInputs::default();
        let sim = CampaignSimulator::new(&f.ds, &load, &inputs);
        let immediate = sim
            .run(&CampaignConfig::new(200.0, CampaignPolicy::Immediate))
            .unwrap();
        let off_peak = sim
            .run(&CampaignConfig::new(
                200.0,
                CampaignPolicy::OffPeak {
                    max_utilization: 0.8,
                },
            ))
            .unwrap();
        assert!(immediate.busy_byte_fraction() > 0.0);
        assert_eq!(off_peak.busy_mb, 0.0);
        // The price: off-peak completes later (or not at all).
        if let (Some(im), Some(op)) = (immediate.median_days(), off_peak.median_days()) {
            assert!(op >= im);
        }
    }

    #[test]
    fn rare_first_beats_off_peak_for_rare_cars() {
        use conncar_analysis::segmentation::CarBusyProfile;
        let f = fixture();
        let cell = f.ds.records()[0].cell;
        // Busy every session hour of the whole study: off-peak starves.
        let mut ledger = f.ledger.clone();
        for day in 0..14u64 {
            ledger.add_load_fraction(
                cell,
                Timestamp::from_day_hms(day, 6, 0, 0),
                Timestamp::from_day_hms(day, 11, 0, 0),
                0.95,
            );
        }
        let load = NetworkLoadModel::new(&ledger, &f.bg, f.region.deployment());
        let mut inputs = PolicyInputs::default();
        // Car 0 is rare; cars 1, 2 are common.
        for (car, days) in [(0u32, 5u32), (1, 60), (2, 60)] {
            inputs.profiles.insert(
                CarId(car),
                CarBusyProfile {
                    car: CarId(car),
                    days_active: days,
                    busy_secs: 0,
                    total_secs: 1,
                },
            );
        }
        let sim = CampaignSimulator::new(&f.ds, &load, &inputs);
        let rare_first = sim
            .run(&CampaignConfig::new(
                200.0,
                CampaignPolicy::RareFirst {
                    rare_cutoff_days: 10,
                    max_utilization: 0.8,
                },
            ))
            .unwrap();
        let off_peak = sim
            .run(&CampaignConfig::new(
                200.0,
                CampaignPolicy::OffPeak {
                    max_utilization: 0.8,
                },
            ))
            .unwrap();
        // The rare car completes under rare-first; off-peak strands
        // everyone in this always-busy scenario.
        assert_eq!(rare_first.completed, 1);
        assert_eq!(off_peak.completed, 0);
    }

    #[test]
    fn staged_rollout_delays_late_waves() {
        let f = fixture();
        let load = NetworkLoadModel::new(&f.ledger, &f.bg, f.region.deployment());
        let inputs = PolicyInputs::default();
        let sim = CampaignSimulator::new(&f.ds, &load, &inputs);
        let all_at_once = sim
            .run(&CampaignConfig::new(300.0, CampaignPolicy::Immediate))
            .unwrap();
        let staged = sim
            .run(
                &CampaignConfig::new(300.0, CampaignPolicy::Immediate)
                    .with_rollout(RolloutPlan::Staged(vec![(0.0, 0.01), (7.0, 1.0)])),
            )
            .unwrap();
        // Staged completes no more cars, and its median completion is
        // later (almost everyone waits for day 7).
        assert!(staged.completed <= all_at_once.completed);
        if let (Some(a), Some(st)) = (all_at_once.median_days(), staged.median_days()) {
            assert!(st >= a, "staged median {st} vs all-at-once {a}");
            assert!(st >= 6.9, "staged median {st} should be past the wave");
        }
        // Progress curve exists and sums to the completion count.
        assert_eq!(
            staged.completions_per_day.iter().sum::<u64>() as usize,
            staged.completed
        );
        // Nothing completes in the gap days 1..7 for the 99% wave.
        let early: u64 = staged.completions_per_day[1..7].iter().sum();
        assert!(early <= 1, "early completions {early}");
    }

    #[test]
    fn rollout_percentile_is_stable_and_uniformish() {
        let a = rollout_percentile(CarId(7));
        assert_eq!(a, rollout_percentile(CarId(7)));
        let n = 10_000;
        let below_half = (0..n)
            .filter(|i| rollout_percentile(CarId(*i)) < 0.5)
            .count();
        let frac = below_half as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "median split {frac}");
        for i in 0..100 {
            let p = rollout_percentile(CarId(i));
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn canary_plan_shape() {
        let plan = RolloutPlan::canary(3.0, 7.0);
        assert_eq!(plan.eligible_from(0.01), Some(0.0));
        assert_eq!(plan.eligible_from(0.10), Some(3.0));
        assert_eq!(plan.eligible_from(0.90), Some(7.0));
        let partial = RolloutPlan::Staged(vec![(0.0, 0.5)]);
        assert_eq!(partial.eligible_from(0.9), None);
        assert_eq!(RolloutPlan::AllAtOnce.eligible_from(0.99), Some(0.0));
    }

    #[test]
    fn load_feedback_slows_the_campaign() {
        // Many cars sharing one cell simultaneously: with feedback on,
        // the delivered bytes congest the cell and completions slip.
        let region = Region::generate(&RegionConfig::small(), 42);
        let period = StudyPeriod::new(DayOfWeek::Monday, 7).unwrap();
        let ledger = PrbLedger::new(period);
        let bg = BackgroundLoad::new(BackgroundLoadConfig::default(), period, -5);
        let cell = CellId::new(region.deployment().stations()[0].id, 0, Carrier::C3);
        let mut records = Vec::new();
        for car in 0..40u32 {
            // Everyone connected through the same two hours each day.
            for day in 0..7u64 {
                let start = Timestamp::from_day_hms(day, 9, 0, 0);
                records.push(CdrRecord {
                    car: CarId(car),
                    cell,
                    start,
                    end: start + Duration::from_hours(2),
                });
            }
        }
        let ds = CdrDataset::new(period, records);
        let load = NetworkLoadModel::new(&ledger, &bg, region.deployment());
        let inputs = PolicyInputs::default();
        let sim = CampaignSimulator::new(&ds, &load, &inputs);
        let free = sim
            .run(&CampaignConfig::new(2_000.0, CampaignPolicy::Immediate))
            .unwrap();
        let fed = sim
            .run(&CampaignConfig::new(2_000.0, CampaignPolicy::Immediate).with_load_feedback())
            .unwrap();
        assert_eq!(free.targeted, fed.targeted);
        // Feedback can only slow delivery.
        assert!(fed.total_mb <= free.total_mb + 1e-6);
        if let (Some(a), Some(b)) = (free.median_days(), fed.median_days()) {
            assert!(b >= a, "feedback median {b} vs free {a}");
        }
        // And it marks bytes as busy that the free run did not.
        assert!(fed.busy_mb >= free.busy_mb);
    }

    #[test]
    fn empty_dataset() {
        let f = fixture();
        let empty = CdrDataset::new(f.ds.period(), Vec::new());
        let load = NetworkLoadModel::new(&f.ledger, &f.bg, f.region.deployment());
        let inputs = PolicyInputs::default();
        let sim = CampaignSimulator::new(&empty, &load, &inputs);
        let r = sim
            .run(&CampaignConfig::new(100.0, CampaignPolicy::Immediate))
            .unwrap();
        assert_eq!(r.targeted, 0);
        assert_eq!(r.completion_rate(), 0.0);
        assert_eq!(r.busy_byte_fraction(), 0.0);
    }
}

//! Text rendering primitives: unicode bars, sparklines, heatmaps and
//! aligned tables. Everything the report module needs to draw the
//! paper's figures in a terminal.

/// Shade characters from empty to full.
const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];

/// Eight-level sparkline glyphs.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// A horizontal bar of `width` cells filled proportionally to
/// `value / max` (empty when `max <= 0`).
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || width == 0 {
        return " ".repeat(width);
    }
    let frac = (value / max).clamp(0.0, 1.0);
    let filled = (frac * width as f64).round() as usize;
    let mut s = String::with_capacity(width * 3);
    for _ in 0..filled.min(width) {
        s.push('█');
    }
    for _ in filled.min(width)..width {
        s.push(' ');
    }
    s
}

/// One sparkline character per value, scaled to the slice maximum.
pub fn sparkline(values: &[f64]) -> String {
    let max = values.iter().copied().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return SPARKS[0].to_string().repeat(values.len());
    }
    values
        .iter()
        .map(|v| {
            let level = ((v / max) * (SPARKS.len() - 1) as f64).round() as usize;
            SPARKS[level.min(SPARKS.len() - 1)]
        })
        .collect()
}

/// A shade character for an intensity in `[0, 1]`.
pub fn shade(intensity: f64) -> char {
    let i = (intensity.clamp(0.0, 1.0) * (SHADES.len() - 1) as f64).round() as usize;
    SHADES[i.min(SHADES.len() - 1)]
}

/// Render a 7×24 matrix as the paper's weekly grid: one row per hour,
/// one column per day (Monday first), shaded by normalized value.
pub fn weekly_heatmap(values: &[[f64; 24]; 7]) -> String {
    let max = values.iter().flatten().copied().fold(0.0f64, f64::max);
    let mut out = String::new();
    out.push_str("      M T W T F S S\n");
    for hour in 0..24 {
        out.push_str(&format!("{hour:>4}  "));
        for day in values.iter() {
            let v = if max > 0.0 { day[hour] / max } else { 0.0 };
            out.push(shade(v));
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

/// A compact two-column ASCII plot of `(x, y)` points: `rows` lines,
/// y scaled to `[0, max_y]`, drawn left-to-right. Meant for CDFs and
/// diurnal curves where shape, not precision, matters.
pub fn line_plot(points: &[(f64, f64)], rows: usize, cols: usize) -> String {
    if points.is_empty() || rows == 0 || cols == 0 {
        return String::new();
    }
    let x_min = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let x_max = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let y_min = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let y_max = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let x_span = (x_max - x_min).max(f64::MIN_POSITIVE);
    let y_span = (y_max - y_min).max(f64::MIN_POSITIVE);
    let mut grid = vec![vec![' '; cols]; rows];
    for &(x, y) in points {
        let c = (((x - x_min) / x_span) * (cols - 1) as f64).round() as usize;
        let r = (((y - y_min) / y_span) * (rows - 1) as f64).round() as usize;
        grid[rows - 1 - r][c.min(cols - 1)] = '•';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:>8.3} ")
        } else if i == rows - 1 {
            format!("{y_min:>8.3} ")
        } else {
            " ".repeat(9)
        };
        out.push_str(&label);
        out.push('│');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(9));
    out.push('└');
    out.push_str(&"─".repeat(cols));
    out.push('\n');
    out.push_str(&format!(
        "{}{:<12.3}{:>width$.3}\n",
        " ".repeat(10),
        x_min,
        x_max,
        width = cols.saturating_sub(12)
    ));
    out
}

/// An aligned text table. `headers.len()` fixes the column count; rows
/// shorter than that are right-padded with empty cells.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().take(cols).enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let render_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, width) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            let pad = width - cell.chars().count();
            line.push_str(cell);
            line.push_str(&" ".repeat(pad));
            if i + 1 < cols {
                line.push_str("  ");
            }
        }
        line.trim_end().to_string()
    };
    let mut out = String::new();
    out.push_str(&render_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"─".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_fills_proportionally() {
        assert_eq!(bar(5.0, 10.0, 10), "█████     ");
        assert_eq!(bar(10.0, 10.0, 4), "████");
        assert_eq!(bar(0.0, 10.0, 4), "    ");
        assert_eq!(bar(99.0, 10.0, 4), "████"); // clamped
        assert_eq!(bar(1.0, 0.0, 3), "   "); // degenerate max
    }

    #[test]
    fn sparkline_levels() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], '█');
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn shade_clamps() {
        assert_eq!(shade(-1.0), ' ');
        assert_eq!(shade(0.0), ' ');
        assert_eq!(shade(1.0), '█');
        assert_eq!(shade(2.0), '█');
        assert_eq!(shade(0.5), '▒');
    }

    #[test]
    fn heatmap_layout() {
        let mut values = [[0.0; 24]; 7];
        values[0][8] = 1.0; // Monday 08
        let out = weekly_heatmap(&values);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 25); // header + 24 hours
        assert!(lines[0].contains("M T W T F S S"));
        // Hour-8 line has the full shade in the Monday column.
        assert!(lines[9].starts_with("   8"));
        assert!(lines[9].contains('█'));
    }

    #[test]
    fn table_alignment_and_padding() {
        let out = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into()], // short row padded
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert_eq!(lines[3].trim_end(), "longer");
    }

    #[test]
    fn line_plot_shape() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, i as f64 * 2.0)).collect();
        let out = line_plot(&pts, 5, 40);
        assert!(out.contains('•'));
        assert!(out.contains('└'));
        assert_eq!(line_plot(&[], 5, 40), "");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.785), "78.5%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(pct(1.0), "100.0%");
    }
}

//! # conncar
//!
//! End-to-end reproduction toolkit for *"Connected cars in cellular
//! network: A measurement study"* (IMC 2017).
//!
//! The paper measured one million real connected cars on a production
//! US cellular network. That substrate is proprietary, so this
//! workspace rebuilds it: a synthetic metro region
//! ([`conncar_geo`]), a radio network with PRB-utilization accounting
//! ([`conncar_radio`]), an archetype-driven car fleet
//! ([`conncar_fleet`]), a CDR pipeline with the paper's measurement
//! artifacts and cleaning ([`conncar_cdr`]), the full §4 analysis suite
//! ([`conncar_analysis`]) and the FOTA campaign planner the findings
//! motivate ([`conncar_fota`]).
//!
//! This crate is the front door:
//!
//! * [`study`] — configure and run a complete study: generate the
//!   region, fleet and trace; inject and clean the measurement dirt;
//!   everything deterministic in one seed.
//! * [`stream`] — the same pipeline as an out-of-core stream: cars in
//!   fixed-size chunks through generate → fault → clean straight into
//!   the compact columnar store, peak memory bounded by the chunk size
//!   rather than the fleet — how the paper-scale (1M-car) substrate is
//!   built.
//! * [`analyses`] — run every analysis of §4 over the study in one call.
//! * [`experiments`] — the registry mapping each paper artifact
//!   (Figure 1 … Figure 11, Tables 1–3, §4.5) to a runner that
//!   regenerates it.
//! * [`report`] — text rendering: the paper's tables as aligned text,
//!   its figures as unicode plots.
//! * [`export`] — write every artifact (text + JSON + manifest) to a
//!   directory for external tooling.
//! * [`runreport`] — the end-to-end record ledger: what the collection
//!   plane damaged, what ingest salvaged, what cleaning removed, and
//!   how faithfully ground truth was recovered.
//! * [`telemetry`] — run the whole pipeline under one span tree and
//!   counter registry ([`conncar_obs`]) and emit it as `RUN_OBS.json`.
//!
//! ## Quickstart
//!
//! ```
//! use conncar::study::{StudyConfig, StudyData};
//!
//! let cfg = StudyConfig::tiny(); // 120 cars × 7 days: doc-test sized
//! let study = StudyData::generate(&cfg).expect("valid config");
//! assert!(study.clean.len() > 0);
//! let analyses = conncar::analyses::StudyAnalyses::run(&study).expect("analyses");
//! println!("{}", conncar::report::render_table1(&analyses.weekday_table));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyses;
pub mod experiments;
pub mod export;
pub mod render;
pub mod report;
pub mod runreport;
pub mod stream;
pub mod study;
pub mod telemetry;

pub use analyses::StudyAnalyses;
pub use experiments::{Experiment, ExperimentOutput};
pub use runreport::RunReport;
pub use stream::{build_streamed, build_streamed_with_clock, ChunkSpan, StreamedBuild};
pub use study::{BuildConfig, PipelineCapture, StudyConfig, StudyData};
pub use telemetry::{
    run_instrumented, run_instrumented_captured, run_instrumented_replayed, trace_id,
};

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared test fixture: generating even a tiny study costs seconds,
    //! so the crate's tests share one.
    use crate::{StudyAnalyses, StudyConfig, StudyData};
    use std::sync::OnceLock;

    pub fn tiny_fixture() -> &'static (StudyData, StudyAnalyses) {
        static FIXTURE: OnceLock<(StudyData, StudyAnalyses)> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let study = StudyData::generate(&StudyConfig::tiny()).expect("tiny study");
            let analyses = StudyAnalyses::run(&study).expect("analyses");
            (study, analyses)
        })
    }
}

//! One-call execution of the whole §4 analysis suite.

use crate::study::StudyData;
use conncar_analysis::carrier::{carrier_usage, CarrierUsage};
use conncar_analysis::cluster::{cluster_busy_cells, BusyCellClustering};
use conncar_analysis::concurrency::ConcurrencyIndex;
use conncar_analysis::duration::{connection_durations, ConnectionDurationResult};
use conncar_analysis::handover::{handover_analysis, HandoverResult};
use conncar_analysis::matrix::{car_matrix, WeeklyMatrix};
use conncar_analysis::duration::fuse_connection_durations;
use conncar_analysis::fusion::fuse_presence_concurrency;
use conncar_analysis::segmentation::{
    busy_time_distribution, car_profiles, days_histogram, fuse_car_profiles, segment,
    BusyTimeResult, CarBusyProfile, SegmentRow,
};
use conncar_analysis::temporal::{
    connected_time_cdf, daily_presence, fuse_connected_time, weekday_table, ConnectedTimeResult,
    DailyPresenceResult, WeekdayRow,
};
use conncar_cdr::SessionConfig;
use conncar_fleet::Archetype;
use conncar_obs::{CounterRegistry, NullClock, Span};
use conncar_store::{CdrStore, Filter, FusedPass, QueryStats};
use conncar_types::{CarId, Result};

/// Busy-hour attribution thresholds of §4.3: ≥ 65% busy ⇒ "busy car",
/// ≤ 35% ⇒ "non-busy car".
pub const BUSY_CAR_HI: f64 = 0.65;
/// See [`BUSY_CAR_HI`].
pub const BUSY_CAR_LO: f64 = 0.35;

/// Results of every analysis over one study.
#[derive(Debug)]
pub struct StudyAnalyses {
    /// Figure 2.
    pub presence: DailyPresenceResult,
    /// Table 1.
    pub weekday_table: Vec<WeekdayRow>,
    /// Figure 3.
    pub connected_time: ConnectedTimeResult,
    /// The per-car joined profiles feeding Figures 6–7 and Table 2.
    pub profiles: Vec<CarBusyProfile>,
    /// Figure 6.
    pub days_histogram: Vec<u64>,
    /// Table 2: rows at the two rarity cutoffs (scaled to the study
    /// length: the paper's 10 and 30 days of 90).
    pub segmentation: [SegmentRow; 2],
    /// Figure 7.
    pub busy_time: BusyTimeResult,
    /// Figure 9.
    pub durations: ConnectionDurationResult,
    /// The per-(cell, bin) concurrency index behind Figures 8, 10, 11.
    pub concurrency: ConcurrencyIndex,
    /// Figure 11, with the qualification threshold actually used (the
    /// paper's 70% is relaxed stepwise on small studies that have no
    /// such cells).
    pub clustering: Option<BusyCellClustering>,
    /// §4.5.
    pub handovers: HandoverResult,
    /// Table 3.
    pub carriers: CarrierUsage,
    /// Figure 5's three exemplar cars and their matrices.
    pub sample_cars: Vec<(CarId, WeeklyMatrix)>,
    /// Aggregate cost of every store-backed query that produced the
    /// results above (all zeros on the legacy path).
    pub query_stats: QueryStats,
}

impl StudyAnalyses {
    /// Run everything. The clean dataset is laid out into a
    /// [`CdrStore`] once and the hot analyses execute through it —
    /// sharing one fused scan over the shards; the results are
    /// byte-identical to [`StudyAnalyses::run_legacy`] (enforced by
    /// `tests/store_equivalence.rs`).
    pub fn run(study: &StudyData) -> Result<StudyAnalyses> {
        let store = CdrStore::build_auto(&study.clean);
        StudyAnalyses::run_with_store(study, &store)
    }

    /// Run everything against an already-built store (callers that keep
    /// the store around for ad-hoc queries build it once and share it).
    /// Thin wrapper over [`StudyAnalyses::run_traced`] with a discarded
    /// null-clock span, so there is exactly one store-backed execution
    /// path.
    pub fn run_with_store(study: &StudyData, store: &CdrStore) -> Result<StudyAnalyses> {
        let clock = NullClock;
        let mut span = Span::enter(&clock, "analysis");
        let mut counters = CounterRegistry::new();
        StudyAnalyses::run_traced(study, store, &mut span, &mut counters)
    }

    /// Run everything, attaching one `analysis/<name>` child span per
    /// analysis to `span` and accounting every store query's cost into
    /// `counters`.
    ///
    /// The five store-backed analyses (presence, connected time,
    /// profiles, durations, concurrency) no longer scan once each: they
    /// register as folders in one [`FusedPass`] and share a **single**
    /// pass over the shards (the `analysis/fused_scan` span, whose item
    /// count is the rows scanned — once, not five times). Presence and
    /// concurrency go further and share one *folder*: the combined
    /// accumulator derives Figure 2's cell counts from the concurrency
    /// key relation, so both results assemble under the
    /// `analysis/presence` span and the `analysis/concurrency` span
    /// only reports the already-built index. Each remaining analysis's
    /// own span covers only its assembly work, with its natural output
    /// unit as the item count — always nonzero on a live study, which
    /// is what the CI zero-item gate checks.
    pub fn run_traced(
        study: &StudyData,
        store: &CdrStore,
        span: &mut Span<'_>,
        counters: &mut CounterRegistry,
    ) -> Result<StudyAnalyses> {
        let model = study.load_model();
        let cap = study.config.truncation;
        let mut query_stats = QueryStats::default();

        let (mut out, pc_f, connected_f, profiles_f, durations_f) = span
            .child("analysis/fused_scan", |sp| {
                let mut pass = FusedPass::new(store, Filter::all());
                let pc_f = fuse_presence_concurrency(&mut pass, study.total_cars());
                let connected_f = fuse_connected_time(&mut pass, study.total_cars(), cap);
                let profiles_f = fuse_car_profiles(&mut pass, &model);
                let durations_f = fuse_connection_durations(&mut pass, cap);
                let out = pass.run();
                sp.set_items(out.stats().rows_scanned);
                (out, pc_f, connected_f, profiles_f, durations_f)
            });
        query_stats.absorb(&out.stats());

        let (presence, concurrency) = span.child("analysis/presence", |sp| {
            let r = pc_f.finish(&mut out);
            sp.set_items(r.0.days.len() as u64);
            r
        });
        let weekday = span.child("analysis/weekday_table", |sp| {
            let rows = weekday_table(&presence);
            sp.set_items(rows.len() as u64);
            rows
        });
        let connected_time = span.child("analysis/connected_time", |sp| {
            let r = connected_f.finish(&mut out)?;
            sp.set_items(r.full.len() as u64);
            Ok::<_, conncar_types::Error>(r)
        })?;
        let profiles = span.child("analysis/profiles", |sp| {
            let r = profiles_f.finish(&mut out);
            sp.set_items(r.len() as u64);
            r
        });
        let study_days = study.config.period.days();
        let hist = span.child("analysis/days_histogram", |sp| {
            sp.set_items(profiles.len() as u64);
            days_histogram(&profiles, study_days)
        });
        let cutoff = |paper_days: u32| -> u32 {
            conncar_types::saturating_u32((paper_days as u64 * study_days as u64).div_ceil(90))
        };
        let segmentation = span.child("analysis/segmentation", |sp| {
            sp.set_items(profiles.len() as u64);
            [
                segment(&profiles, cutoff(10), BUSY_CAR_HI, BUSY_CAR_LO),
                segment(&profiles, cutoff(30), BUSY_CAR_HI, BUSY_CAR_LO),
            ]
        });
        let busy_time = span.child("analysis/busy_time", |sp| {
            sp.set_items(profiles.len() as u64);
            busy_time_distribution(&profiles)
        })?;
        let durations = span.child("analysis/durations", |sp| {
            let r = durations_f.finish(&mut out)?;
            sp.set_items(r.full.len() as u64);
            Ok::<_, conncar_types::Error>(r)
        })?;
        // The index was built together with presence above; this span
        // records its size so the zero-item gate still covers it.
        span.child("analysis/concurrency", |sp| {
            sp.set_items(concurrency.cell_count() as u64);
        });
        let clustering = span.child("analysis/clustering", |sp| {
            sp.set_items(concurrency.cell_count() as u64);
            relax_clustering(&concurrency, &model, study.config.seed)
        });
        let handovers = span.child("analysis/handovers", |sp| {
            let r = handover_analysis(&study.clean, SessionConfig::MOBILITY)?;
            sp.set_items(r.sessions as u64);
            Ok::<_, conncar_types::Error>(r)
        })?;
        let carriers = span.child("analysis/carriers", |sp| {
            let r = carrier_usage(&study.clean);
            sp.set_items(r.cars as u64);
            r
        });
        let sample_cars = span.child("analysis/sample_cars", |sp| {
            let r = sample_car_matrices(study);
            sp.set_items(r.len() as u64);
            r
        });
        query_stats.record_into(counters);

        Ok(StudyAnalyses {
            presence,
            weekday_table: weekday,
            connected_time,
            profiles,
            days_histogram: hist,
            segmentation,
            busy_time,
            durations,
            concurrency,
            clustering,
            handovers,
            carriers,
            sample_cars,
            query_stats,
        })
    }

    /// The original flat-scan path, kept as the equivalence baseline:
    /// every analysis walks `study.clean` directly.
    pub fn run_legacy(study: &StudyData) -> Result<StudyAnalyses> {
        let ds = &study.clean;
        let model = study.load_model();
        let cap = study.config.truncation;

        let presence = daily_presence(ds, study.total_cars());
        let weekday = weekday_table(&presence);
        let connected_time = connected_time_cdf(ds, study.total_cars(), cap)?;
        let profiles = car_profiles(ds, &model);
        let study_days = study.config.period.days();
        let hist = days_histogram(&profiles, study_days);
        let cutoff = |paper_days: u32| -> u32 {
            conncar_types::saturating_u32((paper_days as u64 * study_days as u64).div_ceil(90))
        };
        let segmentation = [
            segment(&profiles, cutoff(10), BUSY_CAR_HI, BUSY_CAR_LO),
            segment(&profiles, cutoff(30), BUSY_CAR_HI, BUSY_CAR_LO),
        ];
        let busy_time = busy_time_distribution(&profiles)?;
        let durations = connection_durations(ds, cap)?;
        let concurrency = ConcurrencyIndex::build(ds);
        let clustering = relax_clustering(&concurrency, &model, study.config.seed);
        let handovers = handover_analysis(ds, SessionConfig::MOBILITY)?;
        let carriers = carrier_usage(ds);
        let sample_cars = sample_car_matrices(study);

        Ok(StudyAnalyses {
            presence,
            weekday_table: weekday,
            connected_time,
            profiles,
            days_histogram: hist,
            segmentation,
            busy_time,
            durations,
            concurrency,
            clustering,
            handovers,
            carriers,
            sample_cars,
            query_stats: QueryStats::default(),
        })
    }
}

/// Figure 11 qualification: start at the paper's 70% mean weekly PRB and
/// relax until some cells qualify (small synthetic runs may have none at
/// 70%).
fn relax_clustering(
    concurrency: &ConcurrencyIndex,
    model: &conncar_analysis::busy::NetworkLoadModel<'_>,
    seed: u64,
) -> Option<BusyCellClustering> {
    for threshold in [0.70, 0.60, 0.50, 0.40] {
        if let Ok(c) = cluster_busy_cells(concurrency, model, threshold, 2, seed) {
            return Some(c);
        }
    }
    None
}

/// Figure 5's three exemplar cars, mirroring the paper's picks:
///
/// 1. a strict rush-hour commuter (sharp weekday stripes);
/// 2. a heavy all-week user (dark everywhere, weekend mass);
/// 3. an early-bird commuter whose stripes sit *before* peak commute
///    hours.
pub fn sample_car_matrices(study: &StudyData) -> Vec<(CarId, WeeklyMatrix)> {
    let tz = study.region.timezone();
    let period = study.config.period;
    let by_car: std::collections::BTreeMap<CarId, &[conncar_cdr::CdrRecord]> =
        study.clean.by_car().collect();
    let connected =
        |car: CarId| -> bool { by_car.get(&car).map(|r| r.len() > 20).unwrap_or(false) };

    let mut picks: Vec<CarId> = Vec::new();
    // 1: regular commuter with records.
    if let Some(p) = study
        .personas
        .iter()
        .find(|p| p.archetype == Archetype::RegularCommuter && connected(p.car))
    {
        picks.push(p.car);
    }
    // 2: heavy fleet car.
    if let Some(p) = study
        .personas
        .iter()
        .find(|p| p.archetype == Archetype::HeavyFleet && connected(p.car))
    {
        picks.push(p.car);
    }
    // 3: the earliest-departing connected commuter.
    if let Some(p) = study
        .personas
        .iter()
        .filter(|p| p.archetype == Archetype::RegularCommuter && connected(p.car))
        .min_by_key(|p| p.commute_out_secs)
    {
        if !picks.contains(&p.car) {
            picks.push(p.car);
        }
    }
    // Fallback: any connected cars, so tiny studies still render three.
    for (car, _) in study.clean.by_car() {
        if picks.len() >= 3 {
            break;
        }
        if !picks.contains(&car) {
            picks.push(car);
        }
    }
    picks
        .into_iter()
        .map(|car| {
            let records = by_car.get(&car).copied().unwrap_or(&[]);
            (car, car_matrix(records, period, tz))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    

    fn analyses() -> &'static (StudyData, StudyAnalyses) {
        crate::testutil::tiny_fixture()
    }

    #[test]
    fn all_analyses_produce_output() {
        let (study, a) = analyses();
        assert_eq!(a.presence.days.len(), 7);
        assert_eq!(a.weekday_table.len(), 8);
        assert_eq!(a.connected_time.full.len(), study.total_cars());
        assert!(!a.profiles.is_empty());
        assert_eq!(a.days_histogram.len(), 8);
        assert!(a.durations.full.len() > 100);
        assert!(a.concurrency.cell_count() > 10);
        assert!(a.handovers.sessions > 10);
        assert!(a.carriers.cars > 50);
        assert_eq!(a.sample_cars.len(), 3);
    }

    #[test]
    fn store_query_counters_are_populated() {
        let (study, a) = analyses();
        // All five store-backed analyses share ONE fused pass: the
        // dataset is scanned exactly once, not once per analysis.
        assert_eq!(a.query_stats.rows_scanned, study.clean.len() as u64);
        assert_eq!(a.query_stats.rows_matched, a.query_stats.rows_scanned);
        assert!(a.query_stats.shards_scanned > 0);
        assert!(a.query_stats.scan_nanos > 0);
    }

    #[test]
    fn segmentation_rows_are_consistent() {
        let (_, a) = analyses();
        for row in &a.segmentation {
            let total = row.rare_total() + row.common_total();
            assert!((total - 1.0).abs() < 1e-9, "total {total}");
        }
        // Wider cutoff ⇒ at least as many rare cars.
        assert!(a.segmentation[1].rare_total() >= a.segmentation[0].rare_total());
    }

    #[test]
    fn most_cars_connect_on_weekdays() {
        let (_, a) = analyses();
        let mon = &a.weekday_table[0];
        assert!(mon.cars_mean > 0.4, "Monday presence {}", mon.cars_mean);
    }

    #[test]
    fn truncation_reduces_connected_time() {
        let (_, a) = analyses();
        let (full, trunc) = a.connected_time.means();
        assert!(trunc <= full);
        assert!(full > 0.0);
    }

    #[test]
    fn sample_cars_have_nonzero_matrices() {
        let (_, a) = analyses();
        for (car, m) in &a.sample_cars {
            assert!(m.total() > 0.0, "car {car} has empty matrix");
        }
    }
}

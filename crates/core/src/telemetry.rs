//! One instrumented run: the whole pipeline under a single span tree
//! and counter registry, emitted as a [`RunTelemetry`] artifact.
//!
//! [`run_instrumented`] is the observability front door. It executes
//! the same pipeline as [`StudyData::generate`] followed by
//! [`StudyAnalyses::run_with_store`], but threads one injected
//! [`Clock`] and one [`CounterRegistry`] through every layer:
//!
//! ```text
//! run
//! ├─ generate            (ground-truth synthesis)
//! │  ├─ generate/region
//! │  └─ generate/fleet
//! ├─ fault               (record-level damage injection)
//! ├─ encode              (framed v2 stream write)
//! ├─ salvage             (corruption-tolerant ingest)
//! ├─ clean               (§3 staged pre-processing)
//! │  ├─ clean/validate … clean/overlap
//! ├─ store_build         (columnar shard layout; one child per shard)
//! └─ analysis            (the §4 suite; one fused store scan plus one
//!                         child per analysis)
//! ```
//!
//! Passing a [`NullClock`](conncar_obs::NullClock) zeroes every wall
//! reading, making the whole artifact a pure function of the study
//! config — the double-run determinism test serializes two
//! `RUN_OBS.json` files and compares bytes.

use crate::analyses::StudyAnalyses;
use crate::study::{PipelineCapture, StudyConfig, StudyData};
use conncar_cdr::FaultReport;
use conncar_obs::{Clock, CounterRegistry, RunTelemetry, SharedClock, Span};
use conncar_store::CdrStore;
use conncar_types::{Fnv64, Result};

/// Run the full pipeline instrumented: study generation (always
/// including the wire leg), store build, and every analysis, all timed
/// against `clock` and accounted into one registry.
///
/// `shards` fixes the store's shard count; `None` sizes it to the
/// machine ([`CdrStore::build_auto_with_clock`]). Determinism tests pin
/// it, because the shard count shapes the `store_build` span subtree.
pub fn run_instrumented(
    cfg: &StudyConfig,
    clock: SharedClock,
    shards: Option<usize>,
) -> Result<(StudyData, CdrStore, StudyAnalyses, RunTelemetry)> {
    let mut counters = CounterRegistry::new();
    let mut root = Span::enter(&*clock, "run");
    let study = StudyData::generate_traced(cfg, &mut root, &mut counters)?;
    let (store, analyses) = build_and_analyze(&study, &clock, shards, &mut root, &mut counters)?;
    root.set_items(study.clean.len() as u64);
    let telemetry = RunTelemetry {
        clock: Clock::kind(&*clock).to_string(),
        trace: None,
        root: root.finish(),
        counters,
    };
    Ok((study, store, analyses, telemetry))
}

/// [`run_instrumented`] in record mode: identical pipeline, identical
/// artifacts, plus a [`PipelineCapture`] of every nondeterministic
/// input so the run can be replayed from its trace alone. The
/// telemetry's `trace` field carries the run's [`trace_id`].
pub fn run_instrumented_captured(
    cfg: &StudyConfig,
    clock: SharedClock,
    shards: Option<usize>,
) -> Result<(StudyData, CdrStore, StudyAnalyses, RunTelemetry, PipelineCapture)> {
    let mut counters = CounterRegistry::new();
    let mut root = Span::enter(&*clock, "run");
    let (study, capture) = StudyData::generate_traced_captured(cfg, &mut root, &mut counters)?;
    let (store, analyses) = build_and_analyze(&study, &clock, shards, &mut root, &mut counters)?;
    root.set_items(study.clean.len() as u64);
    let telemetry = RunTelemetry {
        clock: Clock::kind(&*clock).to_string(),
        trace: Some(trace_id(cfg.seed, store.shard_count(), &capture.damaged_stream)),
        root: root.finish(),
        counters,
    };
    Ok((study, store, analyses, telemetry, capture))
}

/// [`run_instrumented`] in replay mode: the world regenerates from the
/// config, the recorded damaged `stream` replaces the fault → encode →
/// corrupt leg (see [`StudyData::generate_traced_replayed`]), and the
/// store and analyses run as usual. The shard count is always pinned —
/// a recorded run knows exactly how many shards it built, and replaying
/// onto a machine-sized store would diverge spuriously.
///
/// Returns the regenerated ground truth's content digest alongside the
/// usual artifacts; the telemetry's `trace` field matches the recorded
/// run's, so `RUN_OBS.json` replays byte-for-byte under a null clock.
pub fn run_instrumented_replayed(
    cfg: &StudyConfig,
    clock: SharedClock,
    shards: usize,
    stream: &[u8],
    fault_report: FaultReport,
    records_collected: usize,
) -> Result<(StudyData, CdrStore, StudyAnalyses, RunTelemetry, u64)> {
    let mut counters = CounterRegistry::new();
    let mut root = Span::enter(&*clock, "run");
    let (study, truth_digest) = StudyData::generate_traced_replayed(
        cfg,
        &mut root,
        &mut counters,
        stream,
        fault_report,
        records_collected,
    )?;
    let (store, analyses) =
        build_and_analyze(&study, &clock, Some(shards), &mut root, &mut counters)?;
    root.set_items(study.clean.len() as u64);
    let telemetry = RunTelemetry {
        clock: Clock::kind(&*clock).to_string(),
        trace: Some(trace_id(cfg.seed, store.shard_count(), stream)),
        root: root.finish(),
        counters,
    };
    Ok((study, store, analyses, telemetry, truth_digest))
}

/// The identity every artifact of a recorded (or replayed) run carries:
/// FNV-1a 64 over the seed, the pinned shard count, and the damaged
/// byte stream. Two runs share a trace id exactly when they would
/// replay identically, so the id doubles as the run's handle in error
/// messages (see `Cleaner::for_run`) and in `RUN_OBS.json`.
pub fn trace_id(seed: u64, shards: usize, stream: &[u8]) -> String {
    let mut h = Fnv64::new();
    h.update_u64(seed);
    h.update_u64(shards as u64);
    h.update_u64(stream.len() as u64);
    h.update(stream);
    h.finish_hex()
}

/// The tail every instrumented mode shares: build the store (timed),
/// prune empty-shard children, account the store counters, and run the
/// analysis suite under its span.
fn build_and_analyze(
    study: &StudyData,
    clock: &SharedClock,
    shards: Option<usize>,
    root: &mut Span<'_>,
    counters: &mut CounterRegistry,
) -> Result<(CdrStore, StudyAnalyses)> {
    let store = match shards {
        Some(n) => CdrStore::build_with_clock(&study.clean, n, clock.clone()),
        None => CdrStore::build_auto_with_clock(&study.clean, clock.clone()),
    };
    let mut build = store.build_span();
    // Empty shards did no work; a zero-item child would trip the CI
    // telemetry gate for what is a normal small-study layout artifact.
    build.children.retain(|c| c.items > 0);
    root.attach(build);
    counters.add("store.shards_built", store.shard_count() as u64);
    counters.add("store.rows_stored", store.len() as u64);

    let analyses = root.child("analysis", |s| {
        s.set_items(study.clean.len() as u64);
        StudyAnalyses::run_traced(study, &store, s, counters)
    })?;
    Ok((store, analyses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_obs::{MonotonicClock, NullClock};
    use std::sync::Arc;

    #[test]
    fn instrumented_run_covers_every_stage_with_items() {
        let cfg = StudyConfig::tiny();
        let (study, store, analyses, t) =
            run_instrumented(&cfg, Arc::new(NullClock), Some(3)).unwrap();
        // Same pipeline, same results as the plain path — except the
        // wire leg always rides, so the ingest report is pristine-real
        // rather than defaulted.
        let plain = StudyData::generate(&cfg).unwrap();
        assert_eq!(study.clean.records(), plain.clean.records());
        assert_eq!(study.dirty.records(), plain.dirty.records());
        assert!(study.ingest_report.is_pristine());
        assert!(study.ingest_report.records_yielded > 0);
        assert_eq!(store.shard_count(), 3);
        assert!(analyses.query_stats.rows_scanned > 0);

        // The span tree covers generation, salvage, every clean stage,
        // the store build, and every analysis.
        for name in [
            "run",
            "generate",
            "generate/region",
            "generate/fleet",
            "fault",
            "encode",
            "salvage",
            "clean",
            "clean/validate",
            "clean/dedup",
            "clean/glitch",
            "clean/overlap",
            "store_build",
            "analysis",
            "analysis/fused_scan",
            "analysis/presence",
            "analysis/connected_time",
            "analysis/profiles",
            "analysis/durations",
            "analysis/concurrency",
            "analysis/handovers",
            "analysis/carriers",
            "analysis/sample_cars",
        ] {
            assert!(t.root.find(name).is_some(), "span {name} missing");
        }
        // Every registered stage did work: the CI gate's condition.
        assert_eq!(t.zero_item_stages(), Vec::<String>::new());
        // Counters carry all four namespaces plus the run ledger.
        for key in [
            "generate.records_emitted",
            "fault.hour_glitches",
            "ingest.records_yielded",
            "clean.dropped_glitches",
            "quarantine.glitch",
            "store.rows_scanned",
            "store.scan_nanos",
            "run.records_clean",
        ] {
            assert!(t.counters.contains(key), "counter {key} missing");
        }
        assert_eq!(
            t.counters.get("run.records_clean"),
            study.clean.len() as u64
        );
        assert!(study.run_report.agrees_with_counters(&t.counters));
    }

    #[test]
    fn null_clock_telemetry_is_byte_identical_across_runs() {
        let cfg = StudyConfig::tiny();
        let (_, _, _, a) = run_instrumented(&cfg, Arc::new(NullClock), Some(2)).unwrap();
        let (_, _, _, b) = run_instrumented(&cfg, Arc::new(NullClock), Some(2)).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.clock, "null");
        // Untimed: every wall reading is zero.
        let mut walls = 0u64;
        a.root.walk(&mut |s, _| walls += s.wall_ns);
        assert_eq!(walls, 0);
        assert_eq!(a.counters.get("store.scan_nanos"), 0);
    }

    #[test]
    fn replay_reproduces_the_recorded_run_byte_for_byte() {
        let cfg = StudyConfig::tiny();
        let (study, _, _, tel, cap) =
            run_instrumented_captured(&cfg, Arc::new(NullClock), Some(2)).unwrap();
        // Capture is observational: same study, same spans, same
        // counters as the plain instrumented run — only the trace
        // identity is new.
        let (plain, _, _, plain_tel) =
            run_instrumented(&cfg, Arc::new(NullClock), Some(2)).unwrap();
        assert_eq!(study.clean.records(), plain.clean.records());
        assert_eq!(study.run_report, plain.run_report);
        assert_eq!(tel.root, plain_tel.root);
        assert_eq!(tel.counters, plain_tel.counters);
        assert!(plain_tel.trace.is_none());
        assert_eq!(
            tel.trace.as_deref(),
            Some(trace_id(cfg.seed, 2, &cap.damaged_stream).as_str())
        );
        // The capture accounts the whole collection plane.
        assert_eq!(cap.records_collected, study.run_report.records_collected);
        assert_ne!(cap.truth_digest, 0);
        assert!(!cap.salvage_log.chunks.is_empty());

        // Replay from the capture alone reproduces every artifact.
        let (replayed, _, _, replay_tel, truth_digest) = run_instrumented_replayed(
            &cfg,
            Arc::new(NullClock),
            2,
            &cap.damaged_stream,
            study.fault_report.clone(),
            cap.records_collected,
        )
        .unwrap();
        assert_eq!(truth_digest, cap.truth_digest);
        assert_eq!(replayed.clean.records(), study.clean.records());
        assert_eq!(replayed.dirty.records(), study.dirty.records());
        assert_eq!(replayed.run_report, study.run_report);
        assert_eq!(replay_tel.to_json(), tel.to_json());
    }

    #[test]
    fn monotonic_clock_times_the_run() {
        let cfg = StudyConfig::tiny();
        let (_, _, _, t) =
            run_instrumented(&cfg, Arc::new(MonotonicClock::new()), Some(2)).unwrap();
        assert_eq!(t.clock, "monotonic");
        assert!(t.root.wall_ns > 0);
        // The generate stage dominates a tiny run; it must have a real
        // reading, and the derived rate must follow.
        let gen = t.root.find("generate").unwrap();
        assert!(gen.wall_ns > 0);
        assert!(gen.items_per_sec() > 0.0);
    }
}

//! One instrumented run: the whole pipeline under a single span tree
//! and counter registry, emitted as a [`RunTelemetry`] artifact.
//!
//! [`run_instrumented`] is the observability front door. It executes
//! the same pipeline as [`StudyData::generate`] followed by
//! [`StudyAnalyses::run_with_store`], but threads one injected
//! [`Clock`] and one [`CounterRegistry`] through every layer:
//!
//! ```text
//! run
//! ├─ generate            (ground-truth synthesis)
//! │  ├─ generate/region
//! │  └─ generate/fleet
//! ├─ fault               (record-level damage injection)
//! ├─ encode              (framed v2 stream write)
//! ├─ salvage             (corruption-tolerant ingest)
//! ├─ clean               (§3 staged pre-processing)
//! │  ├─ clean/validate … clean/overlap
//! ├─ store_build         (columnar shard layout; one child per shard)
//! └─ analysis            (the §4 suite; one fused store scan plus one
//!                         child per analysis)
//! ```
//!
//! Passing a [`NullClock`](conncar_obs::NullClock) zeroes every wall
//! reading, making the whole artifact a pure function of the study
//! config — the double-run determinism test serializes two
//! `RUN_OBS.json` files and compares bytes.

use crate::analyses::StudyAnalyses;
use crate::study::{StudyConfig, StudyData};
use conncar_obs::{Clock, CounterRegistry, RunTelemetry, SharedClock, Span};
use conncar_store::CdrStore;
use conncar_types::Result;

/// Run the full pipeline instrumented: study generation (always
/// including the wire leg), store build, and every analysis, all timed
/// against `clock` and accounted into one registry.
///
/// `shards` fixes the store's shard count; `None` sizes it to the
/// machine ([`CdrStore::build_auto_with_clock`]). Determinism tests pin
/// it, because the shard count shapes the `store_build` span subtree.
pub fn run_instrumented(
    cfg: &StudyConfig,
    clock: SharedClock,
    shards: Option<usize>,
) -> Result<(StudyData, CdrStore, StudyAnalyses, RunTelemetry)> {
    let mut counters = CounterRegistry::new();
    let mut root = Span::enter(&*clock, "run");
    let study = StudyData::generate_traced(cfg, &mut root, &mut counters)?;

    let store = match shards {
        Some(n) => CdrStore::build_with_clock(&study.clean, n, clock.clone()),
        None => CdrStore::build_auto_with_clock(&study.clean, clock.clone()),
    };
    let mut build = store.build_span();
    // Empty shards did no work; a zero-item child would trip the CI
    // telemetry gate for what is a normal small-study layout artifact.
    build.children.retain(|c| c.items > 0);
    root.attach(build);
    counters.add("store.shards_built", store.shard_count() as u64);
    counters.add("store.rows_stored", store.len() as u64);

    let analyses = root.child("analysis", |s| {
        s.set_items(study.clean.len() as u64);
        StudyAnalyses::run_traced(&study, &store, s, &mut counters)
    })?;

    root.set_items(study.clean.len() as u64);
    let telemetry = RunTelemetry {
        clock: Clock::kind(&*clock).to_string(),
        root: root.finish(),
        counters,
    };
    Ok((study, store, analyses, telemetry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_obs::{MonotonicClock, NullClock};
    use std::sync::Arc;

    #[test]
    fn instrumented_run_covers_every_stage_with_items() {
        let cfg = StudyConfig::tiny();
        let (study, store, analyses, t) =
            run_instrumented(&cfg, Arc::new(NullClock), Some(3)).unwrap();
        // Same pipeline, same results as the plain path — except the
        // wire leg always rides, so the ingest report is pristine-real
        // rather than defaulted.
        let plain = StudyData::generate(&cfg).unwrap();
        assert_eq!(study.clean.records(), plain.clean.records());
        assert_eq!(study.dirty.records(), plain.dirty.records());
        assert!(study.ingest_report.is_pristine());
        assert!(study.ingest_report.records_yielded > 0);
        assert_eq!(store.shard_count(), 3);
        assert!(analyses.query_stats.rows_scanned > 0);

        // The span tree covers generation, salvage, every clean stage,
        // the store build, and every analysis.
        for name in [
            "run",
            "generate",
            "generate/region",
            "generate/fleet",
            "fault",
            "encode",
            "salvage",
            "clean",
            "clean/validate",
            "clean/dedup",
            "clean/glitch",
            "clean/overlap",
            "store_build",
            "analysis",
            "analysis/fused_scan",
            "analysis/presence",
            "analysis/connected_time",
            "analysis/profiles",
            "analysis/durations",
            "analysis/concurrency",
            "analysis/handovers",
            "analysis/carriers",
            "analysis/sample_cars",
        ] {
            assert!(t.root.find(name).is_some(), "span {name} missing");
        }
        // Every registered stage did work: the CI gate's condition.
        assert_eq!(t.zero_item_stages(), Vec::<String>::new());
        // Counters carry all four namespaces plus the run ledger.
        for key in [
            "generate.records_emitted",
            "fault.hour_glitches",
            "ingest.records_yielded",
            "clean.dropped_glitches",
            "quarantine.glitch",
            "store.rows_scanned",
            "store.scan_nanos",
            "run.records_clean",
        ] {
            assert!(t.counters.contains(key), "counter {key} missing");
        }
        assert_eq!(
            t.counters.get("run.records_clean"),
            study.clean.len() as u64
        );
        assert!(study.run_report.agrees_with_counters(&t.counters));
    }

    #[test]
    fn null_clock_telemetry_is_byte_identical_across_runs() {
        let cfg = StudyConfig::tiny();
        let (_, _, _, a) = run_instrumented(&cfg, Arc::new(NullClock), Some(2)).unwrap();
        let (_, _, _, b) = run_instrumented(&cfg, Arc::new(NullClock), Some(2)).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.clock, "null");
        // Untimed: every wall reading is zero.
        let mut walls = 0u64;
        a.root.walk(&mut |s, _| walls += s.wall_ns);
        assert_eq!(walls, 0);
        assert_eq!(a.counters.get("store.scan_nanos"), 0);
    }

    #[test]
    fn monotonic_clock_times_the_run() {
        let cfg = StudyConfig::tiny();
        let (_, _, _, t) =
            run_instrumented(&cfg, Arc::new(MonotonicClock::new()), Some(2)).unwrap();
        assert_eq!(t.clock, "monotonic");
        assert!(t.root.wall_ns > 0);
        // The generate stage dominates a tiny run; it must have a real
        // reading, and the derived rate must follow.
        let gen = t.root.find("generate").unwrap();
        assert!(gen.wall_ns > 0);
        assert!(gen.items_per_sec() > 0.0);
    }
}

//! Study generation: one seed in, the whole measurement study out.
//!
//! [`StudyData::generate`] runs the substitution pipeline end to end:
//!
//! 1. generate the synthetic metro region (roads, stations, carriers);
//! 2. drive the archetype fleet through every study day, producing the
//!    ground-truth radio connection trace and PRB load;
//! 3. push the trace through the "collection pipeline": fault injection
//!    (exact-1-hour glitches, data-loss days, sticky modems, plus the
//!    wider taxonomy — duplicates, nested overlaps, skewed modem
//!    clocks) yields the *dirty* dataset the paper's authors actually
//!    received. When wire faults are configured, the dirty records
//!    additionally ride the framed v2 byte stream, get damaged at the
//!    byte level, and are salvaged by the corruption-tolerant reader;
//! 4. apply §3's pre-processing (staged: validate → dedup →
//!    glitch-drop → overlap-resolve) to recover the *clean* dataset the
//!    analyses consume.
//!
//! Both datasets are kept: methodology experiments (how much does
//! cleaning matter?) need the pair. A [`RunReport`] ledgers every
//! record through the pipeline and measures recovery fidelity.

use crate::runreport::{dataset_divergence, RunReport};
use conncar_analysis::busy::NetworkLoadModel;
use conncar_cdr::{
    salvage, salvage_logged, CdrDataset, CdrWriter, CleanConfig, CleanOutcome, CleanReport,
    Cleaner, FaultConfig, FaultInjector, FaultReport, IngestReport, Quarantine, RealizedFaults,
    SalvageLog,
};
use conncar_fleet::{FleetConfig, FleetData, FleetGenerator, Persona};
use conncar_geo::{Region, RegionConfig};
use conncar_obs::{CounterRegistry, Span, SpanRecord};
use conncar_radio::{BackgroundLoad, BackgroundLoadConfig, PrbLedger};
use conncar_types::{Duration, Result, SeedSplitter, StudyPeriod};
use serde::{Deserialize, Serialize};

/// Complete study configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Root seed: every stochastic choice in the study derives from it.
    pub seed: u64,
    /// Study window (paper: 90 days).
    pub period: StudyPeriod,
    /// The synthetic metro region.
    pub region: RegionConfig,
    /// Fleet composition and size.
    pub fleet: FleetConfig,
    /// Background network load model.
    pub background: BackgroundLoadConfig,
    /// Measurement-artifact injection.
    pub faults: FaultConfig,
    /// §3 pre-processing parameters.
    pub clean: CleanConfig,
    /// Analysis-time truncation cap (paper: 600 s).
    pub truncation: Duration,
    /// Out-of-core streaming-build parameters. `None` (the default, and
    /// what every pre-streaming config deserializes to) means the
    /// streaming path uses [`BuildConfig::default`]; the batch pipeline
    /// ignores it entirely.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub build: Option<BuildConfig>,
}

/// Parameters of the out-of-core streaming build (`conncar build` and
/// [`crate::stream::build_streamed`]): how many cars ride each chunk
/// through generate → fault → clean → append, and how wide the store's
/// time-partitioned segments are.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuildConfig {
    /// Cars simulated, faulted and cleaned per chunk. Peak memory
    /// scales with this, not with the fleet size.
    pub chunk_cars: u32,
    /// Width of one store segment in hours; timestamps are delta-packed
    /// against the segment base, so narrower segments pack tighter.
    pub segment_hours: u32,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            chunk_cars: 50_000,
            segment_hours: 24,
        }
    }
}

impl BuildConfig {
    /// Upper bound on `chunk_cars`: a chunk larger than the paper's
    /// whole fleet is a typo, not a tuning choice.
    pub const MAX_CHUNK_CARS: u32 = 10_000_000;
    /// Upper bound on `segment_hours`: one year. Wider segments defeat
    /// delta-packing and always indicate a unit mistake (e.g. seconds
    /// pasted into an hours field).
    pub const MAX_SEGMENT_HOURS: u32 = 24 * 366;

    /// Validate the knobs in isolation (zero or absurd values rejected).
    pub fn validate(&self) -> Result<()> {
        if self.chunk_cars == 0 {
            return Err(conncar_types::Error::InvalidConfig {
                what: "build.chunk_cars",
                why: "a build chunk must contain at least one car".into(),
            });
        }
        if self.chunk_cars > Self::MAX_CHUNK_CARS {
            return Err(conncar_types::Error::InvalidConfig {
                what: "build.chunk_cars",
                why: format!(
                    "{} cars per chunk exceeds the {} maximum",
                    self.chunk_cars,
                    Self::MAX_CHUNK_CARS
                ),
            });
        }
        if self.segment_hours == 0 {
            return Err(conncar_types::Error::InvalidConfig {
                what: "build.segment_hours",
                why: "store segments must span at least one hour".into(),
            });
        }
        if self.segment_hours > Self::MAX_SEGMENT_HOURS {
            return Err(conncar_types::Error::InvalidConfig {
                what: "build.segment_hours",
                why: format!(
                    "{} h per segment exceeds the {} h (one year) maximum",
                    self.segment_hours,
                    Self::MAX_SEGMENT_HOURS
                ),
            });
        }
        Ok(())
    }
}

impl Default for StudyConfig {
    /// A laptop-scale default: 2 000 cars over 28 days in the full-size
    /// region. Statistically stable for every analysis; runs in seconds
    /// in release mode.
    fn default() -> Self {
        StudyConfig {
            seed: 20_170_501,
            period: StudyPeriod::new(conncar_types::DayOfWeek::Monday, 28)
                .expect("nonzero days"),
            region: RegionConfig::default(),
            fleet: FleetConfig::default(),
            background: BackgroundLoadConfig::default(),
            faults: FaultConfig {
                // Loss days scaled into the second half of the window.
                loss_days: vec![17, 18, 24],
                ..FaultConfig::default()
            },
            clean: CleanConfig::default(),
            truncation: Duration::from_secs(600),
            build: None,
        }
    }
}

impl StudyConfig {
    /// Doc-test / unit-test scale: 120 cars over 7 days in the small
    /// region. Finishes in a couple of seconds even in debug builds.
    pub fn tiny() -> StudyConfig {
        StudyConfig {
            period: StudyPeriod::new(conncar_types::DayOfWeek::Monday, 7).expect("nonzero"),
            region: RegionConfig::small(),
            fleet: FleetConfig {
                cars: 120,
                ..FleetConfig::default()
            },
            faults: FaultConfig {
                loss_days: vec![4],
                ..FaultConfig::default()
            },
            ..StudyConfig::default()
        }
    }

    /// Integration-test scale: 400 cars over 14 days in the small
    /// region.
    pub fn small() -> StudyConfig {
        StudyConfig {
            period: StudyPeriod::new(conncar_types::DayOfWeek::Monday, 14).expect("nonzero"),
            region: RegionConfig::small(),
            fleet: FleetConfig {
                cars: 400,
                ..FleetConfig::default()
            },
            faults: FaultConfig {
                loss_days: vec![9, 10, 12],
                ..FaultConfig::default()
            },
            ..StudyConfig::default()
        }
    }

    /// The paper's own scale: 90 days. Car count stays configurable —
    /// the full million is reachable but takes hours; the default here
    /// is 10 000, enough for every distribution to stabilize.
    pub fn paper() -> StudyConfig {
        StudyConfig {
            period: StudyPeriod::PAPER,
            fleet: FleetConfig {
                cars: 10_000,
                ..FleetConfig::default()
            },
            faults: FaultConfig::default(), // loss days 55, 56, 66
            ..StudyConfig::default()
        }
    }

    /// Validate cross-field constraints.
    pub fn validate(&self) -> Result<()> {
        self.fleet.mix.validate()?;
        if let Some(build) = &self.build {
            build.validate()?;
        }
        if self.truncation.is_zero() {
            return Err(conncar_types::Error::InvalidConfig {
                what: "truncation",
                why: "truncation cap must be positive".into(),
            });
        }
        // A loss day outside the window would silently do nothing (the
        // injector ignores it), which always means a misconfigured
        // study — reject it up front.
        if let Some(&d) = self
            .faults
            .loss_days
            .iter()
            .find(|&&d| d >= self.period.days() as u64)
        {
            return Err(conncar_types::Error::InvalidConfig {
                what: "faults.loss_days",
                why: format!(
                    "loss day {d} is outside the {}-day study period",
                    self.period.days()
                ),
            });
        }
        Ok(())
    }
}

/// Everything a recorded run needs beyond its [`StudyConfig`] to be
/// replayed byte for byte.
///
/// The world (region, fleet, ground truth) is a pure function of the
/// config and seed, so it is *not* captured — replay regenerates it.
/// The collection plane's outcome *is* captured: the damaged byte
/// stream exactly as the salvage stage read it, the realized fault
/// schedule, and the per-chunk salvage verdicts. Replay feeds the
/// recorded stream straight into salvage, bypassing fault injection
/// entirely, so even a change to the injector's RNG draw order cannot
/// silently alter a replayed run — it shows up as a stage divergence
/// instead.
#[derive(Debug, Clone)]
pub struct PipelineCapture {
    /// The framed v2 byte stream *after* wire damage — exactly the
    /// bytes the salvage stage read.
    pub damaged_stream: Vec<u8>,
    /// Records entering the wire leg (the `encode` span's item count
    /// and the run ledger's `records_collected`).
    pub records_collected: usize,
    /// The fault schedule as applied, record by record and frame by
    /// frame.
    pub realized: RealizedFaults,
    /// Per-chunk salvage verdicts over the damaged stream.
    pub salvage_log: SalvageLog,
    /// Content digest of the ground truth (the world stage's identity).
    pub truth_digest: u64,
}

/// Everything a study run produces.
#[derive(Debug)]
pub struct StudyData {
    /// The configuration that produced this study.
    pub config: StudyConfig,
    /// The synthetic region.
    pub region: Region,
    /// Ground-truth personas (never available to the paper's authors;
    /// used here for validation and policy inputs).
    pub personas: Vec<Persona>,
    /// Background-load model.
    pub background: BackgroundLoad,
    /// Car-generated PRB load.
    pub ledger: PrbLedger,
    /// The dataset as "collected": faults included.
    pub dirty: CdrDataset,
    /// The dataset after §3 pre-processing — what analyses consume.
    pub clean: CdrDataset,
    /// What fault injection did (ground truth for methodology tests).
    pub fault_report: FaultReport,
    /// What the tolerant ingest path reported. Default (pristine) when
    /// no wire faults were configured and the stream leg was skipped.
    pub ingest_report: IngestReport,
    /// What cleaning removed.
    pub clean_report: CleanReport,
    /// The removed records themselves.
    pub quarantine: Quarantine,
    /// End-to-end record ledger and recovery-fidelity measures.
    pub run_report: RunReport,
}

impl StudyData {
    /// Run the full pipeline.
    pub fn generate(cfg: &StudyConfig) -> Result<StudyData> {
        cfg.validate()?;
        let seeds = SeedSplitter::new(cfg.seed);
        let (region, background, data, truth) = StudyData::build_world(cfg, &seeds)?;
        let injector = FaultInjector::new(cfg.faults.clone(), seeds.domain("faults"));
        let (collected, mut fault_report) = injector.inject(&truth);
        let records_collected = collected.len();
        // The wire leg only runs when a wire fault is configured: the
        // encode → damage → salvage round trip costs time and, on a
        // pristine stream, changes nothing.
        let (dirty, ingest_report) = if cfg.faults.has_wire_faults() {
            StudyData::wire_leg(cfg, &injector, &collected, &mut fault_report)?
        } else {
            (collected, IngestReport::default())
        };
        let outcome = Cleaner::new(cfg.clean.clone()).clean_full(&dirty);
        let (study, _counters) = StudyData::assemble(
            cfg,
            region,
            background,
            data,
            truth,
            records_collected,
            dirty,
            fault_report,
            ingest_report,
            outcome,
        );
        Ok(study)
    }

    /// [`StudyData::generate`] with a span tree and counter registry.
    ///
    /// Child spans (`generate` with `generate/region` and
    /// `generate/fleet`, `fault`, `encode`, `salvage`, `clean` with its
    /// four stages) are attached to `span`, and every stage's counters
    /// land in `counters`. Unlike the plain path, the wire leg *always*
    /// runs — a pristine encode → salvage round trip is lossless and
    /// order-preserving, and instrumented runs must exercise (and time)
    /// the salvage stage even when no wire faults are configured.
    pub fn generate_traced(
        cfg: &StudyConfig,
        span: &mut Span<'_>,
        counters: &mut CounterRegistry,
    ) -> Result<StudyData> {
        cfg.validate()?;
        let seeds = SeedSplitter::new(cfg.seed);
        let (region, background, data, truth) = StudyData::world_traced(cfg, &seeds, span)?;
        let injector = FaultInjector::new(cfg.faults.clone(), seeds.domain("faults"));
        let (collected, mut fault_report) = span.child("fault", |s| {
            s.set_items(truth.len() as u64);
            injector.inject(&truth)
        });
        let records_collected = collected.len();
        let stream = span.child("encode", |s| {
            s.set_items(collected.len() as u64);
            let mut w = CdrWriter::new(Vec::new()).with_chunk_records(cfg.faults.chunk_records);
            w.write_all(collected.records())?;
            let (stream, _) = w.finish()?;
            Ok::<_, conncar_types::Error>(stream)
        })?;
        // With no wire faults configured, corrupt_stream is the
        // identity and salvage yields every record back.
        let damaged = injector.corrupt_stream(&stream, &mut fault_report);
        let (dirty, ingest_report) = span.child("salvage", |s| {
            let (delivered, ingest) = salvage(&damaged);
            s.set_items(delivered.len() as u64);
            (collected.with_records(delivered), ingest)
        });
        let outcome = span.child("clean", |s| {
            Cleaner::new(cfg.clean.clone()).clean_full_traced(&dirty, s)
        });
        let (study, stage_counters) = StudyData::assemble(
            cfg,
            region,
            background,
            data,
            truth,
            records_collected,
            dirty,
            fault_report,
            ingest_report,
            outcome,
        );
        counters.absorb(&stage_counters);
        Ok(study)
    }

    /// [`StudyData::generate_traced`] with every nondeterministic input
    /// captured into a [`PipelineCapture`] for later replay.
    ///
    /// Capture is observational: the logged fault/salvage variants draw
    /// identical RNG streams and return byte-identical outputs, so a
    /// captured run produces exactly the same study, span tree, and
    /// counters as an uncaptured one.
    pub fn generate_traced_captured(
        cfg: &StudyConfig,
        span: &mut Span<'_>,
        counters: &mut CounterRegistry,
    ) -> Result<(StudyData, PipelineCapture)> {
        cfg.validate()?;
        let seeds = SeedSplitter::new(cfg.seed);
        let (region, background, data, truth) = StudyData::world_traced(cfg, &seeds, span)?;
        let truth_digest = truth.content_digest();
        let injector = FaultInjector::new(cfg.faults.clone(), seeds.domain("faults"));
        let (collected, mut fault_report, mut realized) = span.child("fault", |s| {
            s.set_items(truth.len() as u64);
            injector.inject_logged(&truth)
        });
        let records_collected = collected.len();
        let stream = span.child("encode", |s| {
            s.set_items(collected.len() as u64);
            let mut w = CdrWriter::new(Vec::new()).with_chunk_records(cfg.faults.chunk_records);
            w.write_all(collected.records())?;
            let (stream, _) = w.finish()?;
            Ok::<_, conncar_types::Error>(stream)
        })?;
        let damaged = injector.corrupt_stream_logged(&stream, &mut fault_report, &mut realized);
        let (dirty, ingest_report, salvage_log) = span.child("salvage", |s| {
            let (delivered, ingest, log) = salvage_logged(&damaged);
            s.set_items(delivered.len() as u64);
            (collected.with_records(delivered), ingest, log)
        });
        let outcome = span.child("clean", |s| {
            Cleaner::new(cfg.clean.clone()).clean_full_traced(&dirty, s)
        });
        let (study, stage_counters) = StudyData::assemble(
            cfg,
            region,
            background,
            data,
            truth,
            records_collected,
            dirty,
            fault_report,
            ingest_report,
            outcome,
        );
        counters.absorb(&stage_counters);
        let capture = PipelineCapture {
            damaged_stream: damaged,
            records_collected,
            realized,
            salvage_log,
            truth_digest,
        };
        Ok((study, capture))
    }

    /// Reproduce a recorded run from its trace: regenerate the world
    /// from the config (a pure function of the seed), then feed the
    /// *recorded* damaged stream straight into salvage in place of the
    /// fault → encode → corrupt leg.
    ///
    /// The skipped stages leave synthetic untimed spans (`fault` with
    /// the truth count, `encode` with the recorded collected count) so
    /// the replayed span tree — and the `RUN_OBS.json` bytes under a
    /// [`NullClock`](conncar_obs::NullClock) — match the recorded run
    /// exactly. Returns the study plus the regenerated ground truth's
    /// content digest, which replay diffing checks against the trace's
    /// recorded world digest.
    ///
    /// Callers must verify the recorded stream still salvages to
    /// `records_collected` accounted records *before* calling this (see
    /// the replay crate's ingest stage check): final assembly asserts
    /// the ledger reconciles and panics on books that do not balance,
    /// which is the wrong failure mode for a diffable divergence.
    pub fn generate_traced_replayed(
        cfg: &StudyConfig,
        span: &mut Span<'_>,
        counters: &mut CounterRegistry,
        stream: &[u8],
        fault_report: FaultReport,
        records_collected: usize,
    ) -> Result<(StudyData, u64)> {
        cfg.validate()?;
        let seeds = SeedSplitter::new(cfg.seed);
        let (region, background, data, truth) = StudyData::world_traced(cfg, &seeds, span)?;
        let truth_digest = truth.content_digest();
        span.attach(SpanRecord::leaf("fault", 0, truth.len() as u64));
        span.attach(SpanRecord::leaf("encode", 0, records_collected as u64));
        let (dirty, ingest_report) = span.child("salvage", |s| {
            let (delivered, ingest) = salvage(stream);
            s.set_items(delivered.len() as u64);
            (CdrDataset::new(cfg.period, delivered), ingest)
        });
        let outcome = span.child("clean", |s| {
            Cleaner::new(cfg.clean.clone()).clean_full_traced(&dirty, s)
        });
        let (study, stage_counters) = StudyData::assemble(
            cfg,
            region,
            background,
            data,
            truth,
            records_collected,
            dirty,
            fault_report,
            ingest_report,
            outcome,
        );
        counters.absorb(&stage_counters);
        Ok((study, truth_digest))
    }

    /// The traced world stage shared by the plain, captured, and
    /// replayed pipelines: the `generate` span with its `generate/region`
    /// and `generate/fleet` children.
    fn world_traced(
        cfg: &StudyConfig,
        seeds: &SeedSplitter,
        span: &mut Span<'_>,
    ) -> Result<(Region, BackgroundLoad, FleetData, CdrDataset)> {
        span.child("generate", |s| {
            let (region, background) = s.child("generate/region", |r| {
                let region = Region::generate(&cfg.region, seeds.domain("region"));
                let background = BackgroundLoad::new(
                    BackgroundLoadConfig {
                        seed: seeds.domain("background"),
                        ..cfg.background.clone()
                    },
                    cfg.period,
                    region.timezone().offset_hours(),
                );
                r.set_items(region.deployment().stations().len() as u64);
                (region, background)
            });
            let (data, truth) = s.child("generate/fleet", |f| {
                let fleet = FleetGenerator::new(cfg.fleet.clone())?;
                let mut data = fleet.generate(&region, cfg.period, seeds.domain("fleet"));
                let connections = std::mem::take(&mut data.connections);
                let truth = CdrDataset::from_connections(cfg.period, connections);
                f.set_items(truth.len() as u64);
                Ok::<_, conncar_types::Error>((data, truth))
            })?;
            s.set_items(truth.len() as u64);
            Ok::<_, conncar_types::Error>((region, background, data, truth))
        })
    }

    /// Pipeline steps 1–2: region, background load, fleet, ground truth.
    fn build_world(
        cfg: &StudyConfig,
        seeds: &SeedSplitter,
    ) -> Result<(Region, BackgroundLoad, FleetData, CdrDataset)> {
        let region = Region::generate(&cfg.region, seeds.domain("region"));
        let background = BackgroundLoad::new(
            BackgroundLoadConfig {
                seed: seeds.domain("background"),
                ..cfg.background.clone()
            },
            cfg.period,
            region.timezone().offset_hours(),
        );
        let fleet = FleetGenerator::new(cfg.fleet.clone())?;
        let mut data = fleet.generate(&region, cfg.period, seeds.domain("fleet"));
        let connections = std::mem::take(&mut data.connections);
        let truth = CdrDataset::from_connections(cfg.period, connections);
        Ok((region, background, data, truth))
    }

    /// Pipeline step 3b: encode the collected records onto the framed
    /// v2 stream, damage it, and salvage what survives.
    fn wire_leg(
        cfg: &StudyConfig,
        injector: &FaultInjector,
        collected: &CdrDataset,
        fault_report: &mut FaultReport,
    ) -> Result<(CdrDataset, IngestReport)> {
        let mut w = CdrWriter::new(Vec::new()).with_chunk_records(cfg.faults.chunk_records);
        w.write_all(collected.records())?;
        let (stream, _) = w.finish()?;
        let damaged = injector.corrupt_stream(&stream, fault_report);
        let (delivered, ingest) = salvage(&damaged);
        Ok((collected.with_records(delivered), ingest))
    }

    /// Final assembly: one counter registry is built from the stage
    /// reports, the run ledger's salvage counts are derived *from that
    /// registry*, and the whole ledger is asserted consistent before
    /// the study is returned. Both [`StudyData::generate`] and
    /// [`StudyData::generate_traced`] end here, so the two paths can
    /// never account differently.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        cfg: &StudyConfig,
        region: Region,
        background: BackgroundLoad,
        data: FleetData,
        truth: CdrDataset,
        records_collected: usize,
        dirty: CdrDataset,
        fault_report: FaultReport,
        ingest_report: IngestReport,
        outcome: CleanOutcome,
    ) -> (StudyData, CounterRegistry) {
        let (clean, clean_report, quarantine) =
            (outcome.dataset, outcome.report, outcome.quarantine);
        let mut reg = CounterRegistry::new();
        reg.add("generate.records_emitted", truth.len() as u64);
        fault_report.record_counters(&mut reg);
        ingest_report.record_counters(&mut reg);
        clean_report.record_counters(&mut reg);
        quarantine.record_counters(&mut reg);
        // The delivered count is read back out of the registry, not
        // re-derived from the dataset: the counters are the single
        // accounting path and the dataset must agree with them.
        let wire_ran = ingest_report != IngestReport::default();
        let records_delivered = if wire_ran {
            usize::try_from(reg.get("ingest.records_yielded")).expect("record count fits usize")
        } else {
            records_collected
        };
        assert_eq!(
            records_delivered,
            dirty.len(),
            "salvage counters disagree with the delivered dataset"
        );
        let (truth_missing_from_clean, clean_not_in_truth) =
            dataset_divergence(truth.records(), clean.records());
        let run_report = RunReport {
            records_truth: truth.len(),
            records_collected,
            records_delivered,
            records_clean: clean.len(),
            fault: fault_report.clone(),
            ingest: ingest_report.clone(),
            clean: clean_report,
            quarantined: quarantine.len(),
            truth_missing_from_clean,
            clean_not_in_truth,
        };
        run_report.record_counters(&mut reg);
        assert!(
            run_report.reconciles(),
            "run ledger does not reconcile: {run_report:?}"
        );
        assert!(
            run_report.agrees_with_counters(&reg),
            "run ledger disagrees with the stage counters: {run_report:?}"
        );
        let study = StudyData {
            config: cfg.clone(),
            region,
            personas: data.personas,
            background,
            ledger: data.ledger,
            dirty,
            clean,
            fault_report,
            ingest_report,
            clean_report,
            quarantine,
            run_report,
        };
        (study, reg)
    }

    /// The network-load view used by every busy-hour analysis.
    pub fn load_model(&self) -> NetworkLoadModel<'_> {
        NetworkLoadModel::new(&self.ledger, &self.background, self.region.deployment())
    }

    /// Fleet size (including never-connected cars).
    pub fn total_cars(&self) -> usize {
        self.personas.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_study_end_to_end() {
        let study = StudyData::generate(&StudyConfig::tiny()).unwrap();
        assert_eq!(study.total_cars(), 120);
        assert!(study.clean.len() > 100, "{} records", study.clean.len());
        // Cleaning only ever removes records.
        assert!(study.clean.len() <= study.dirty.len());
        assert_eq!(
            study.clean.len() + study.clean_report.dropped_total(),
            study.dirty.len()
        );
        assert!(study.run_report.reconciles());
        // No wire faults configured: the stream leg must not have run.
        assert_eq!(study.ingest_report, Default::default());
        assert_eq!(study.quarantine.len(), study.clean_report.dropped_total());
        // Every injected glitch is caught (plus possibly a few genuine
        // exactly-1-hour records).
        assert!(study.clean_report.dropped_glitches >= study.fault_report.hour_glitches);
        // Loss day visible: fewer records that day than the day before.
        let count_day = |d: u64| {
            study
                .dirty
                .records()
                .iter()
                .filter(|r| r.start.day() == d)
                .count()
        };
        assert!(count_day(4) < count_day(3));
    }

    #[test]
    fn same_seed_same_study() {
        let a = StudyData::generate(&StudyConfig::tiny()).unwrap();
        let b = StudyData::generate(&StudyConfig::tiny()).unwrap();
        assert_eq!(a.clean.records(), b.clean.records());
        assert_eq!(a.dirty.records(), b.dirty.records());
        assert_eq!(a.fault_report, b.fault_report);
    }

    #[test]
    fn different_seed_different_study() {
        let mut cfg = StudyConfig::tiny();
        cfg.seed += 1;
        let a = StudyData::generate(&StudyConfig::tiny()).unwrap();
        let b = StudyData::generate(&cfg).unwrap();
        assert_ne!(a.clean.records(), b.clean.records());
    }

    #[test]
    fn clean_has_no_exact_hour_records() {
        let study = StudyData::generate(&StudyConfig::tiny()).unwrap();
        assert!(study
            .clean
            .records()
            .iter()
            .all(|r| r.duration().as_secs() != 3_600));
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = StudyConfig::tiny();
        cfg.truncation = Duration::ZERO;
        assert!(StudyData::generate(&cfg).is_err());
        let mut cfg = StudyConfig::tiny();
        cfg.fleet.mix.weights[0] = 2.0;
        assert!(StudyData::generate(&cfg).is_err());
    }

    #[test]
    fn loss_days_outside_period_rejected() {
        // Day 7 of a 7-day study (days 0..=6) is out of range.
        let mut cfg = StudyConfig::tiny();
        cfg.faults.loss_days = vec![2, 7];
        assert!(cfg.validate().is_err());
        // The last in-range day is fine.
        cfg.faults.loss_days = vec![6];
        assert!(cfg.validate().is_ok());
        // Every stock configuration stays valid.
        for cfg in [
            StudyConfig::tiny(),
            StudyConfig::small(),
            StudyConfig::default(),
            StudyConfig::paper(),
        ] {
            assert!(cfg.validate().is_ok());
        }
    }

    /// Tiny config with every fault class in the taxonomy switched on.
    fn hostile_cfg() -> StudyConfig {
        let mut cfg = StudyConfig::tiny();
        cfg.faults.duplicate_p = 0.02;
        cfg.faults.overlap_p = 0.01;
        cfg.faults.skew_car_p = 0.1;
        cfg.faults.skew_record_p = 0.3;
        cfg.faults.reorder_chunk_p = 0.2;
        cfg.faults.corrupt_chunk_p = 0.15;
        cfg.faults.truncate_tail_p = 1.0;
        cfg.faults.chunk_records = 256;
        cfg.clean.resolve_overlaps = true;
        cfg
    }

    #[test]
    fn hostile_study_reconciles_per_fault_class() {
        let study = StudyData::generate(&hostile_cfg()).unwrap();
        let run = &study.run_report;
        assert!(run.reconciles(), "{run:?}");
        // The wire leg ran and did damage.
        assert!(study.fault_report.corrupted_chunks > 0);
        assert!(study.fault_report.reordered_chunks > 0);
        // The injector's wire ledger and the reader's ingest ledger
        // agree class by class, record for record.
        assert_eq!(
            study.ingest_report.chunks_skipped,
            study.fault_report.corrupted_chunks
        );
        assert_eq!(
            study.ingest_report.records_lost_corrupt,
            study.fault_report.corrupted_records as u64
        );
        assert_eq!(
            study.ingest_report.records_lost_truncated,
            study.fault_report.truncated_records as u64
        );
        assert_eq!(
            study.ingest_report.truncated_tail,
            study.fault_report.truncated_records > 0
        );
        assert_eq!(study.ingest_report.records_invalid, 0);
        // Cleaning catches every skewed record that made it through the
        // wire (skewed ⇒ non-positive duration ⇒ validate stage).
        assert!(study.clean_report.dropped_malformed <= study.fault_report.skewed);
        // Nothing with a non-positive duration survives.
        assert!(study.clean.records().iter().all(|r| r.is_valid()));
        // Fidelity is meaningful: most of the truth survives the abuse.
        assert!(run.fidelity() > 0.5, "fidelity {}", run.fidelity());
        assert!(run.fidelity() < 1.0);
    }

    #[test]
    fn hostile_study_is_deterministic() {
        let a = StudyData::generate(&hostile_cfg()).unwrap();
        let b = StudyData::generate(&hostile_cfg()).unwrap();
        assert_eq!(a.dirty.records(), b.dirty.records());
        assert_eq!(a.clean.records(), b.clean.records());
        assert_eq!(a.fault_report, b.fault_report);
        assert_eq!(a.ingest_report, b.ingest_report);
        assert_eq!(a.run_report, b.run_report);
    }

    #[test]
    fn load_model_is_live() {
        let study = StudyData::generate(&StudyConfig::tiny()).unwrap();
        let model = study.load_model();
        let r = &study.clean.records()[0];
        let bin = conncar_types::BinIndex::containing(r.start);
        let u = model.utilization(r.cell, bin);
        assert!((0.0..=1.0).contains(&u));
    }
}

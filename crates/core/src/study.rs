//! Study generation: one seed in, the whole measurement study out.
//!
//! [`StudyData::generate`] runs the substitution pipeline end to end:
//!
//! 1. generate the synthetic metro region (roads, stations, carriers);
//! 2. drive the archetype fleet through every study day, producing the
//!    ground-truth radio connection trace and PRB load;
//! 3. push the trace through the "collection pipeline": fault injection
//!    (exact-1-hour glitches, data-loss days, sticky modems) yields the
//!    *dirty* dataset the paper's authors actually received;
//! 4. apply §3's pre-processing to recover the *clean* dataset the
//!    analyses consume.
//!
//! Both datasets are kept: methodology experiments (how much does
//! cleaning matter?) need the pair.

use conncar_analysis::busy::NetworkLoadModel;
use conncar_cdr::{
    CdrDataset, CleanConfig, CleanReport, Cleaner, FaultConfig, FaultInjector, FaultReport,
};
use conncar_fleet::{FleetConfig, FleetGenerator, Persona};
use conncar_geo::{Region, RegionConfig};
use conncar_radio::{BackgroundLoad, BackgroundLoadConfig, PrbLedger};
use conncar_types::{Duration, Result, SeedSplitter, StudyPeriod};
use serde::{Deserialize, Serialize};

/// Complete study configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Root seed: every stochastic choice in the study derives from it.
    pub seed: u64,
    /// Study window (paper: 90 days).
    pub period: StudyPeriod,
    /// The synthetic metro region.
    pub region: RegionConfig,
    /// Fleet composition and size.
    pub fleet: FleetConfig,
    /// Background network load model.
    pub background: BackgroundLoadConfig,
    /// Measurement-artifact injection.
    pub faults: FaultConfig,
    /// §3 pre-processing parameters.
    pub clean: CleanConfig,
    /// Analysis-time truncation cap (paper: 600 s).
    pub truncation: Duration,
}

impl Default for StudyConfig {
    /// A laptop-scale default: 2 000 cars over 28 days in the full-size
    /// region. Statistically stable for every analysis; runs in seconds
    /// in release mode.
    fn default() -> Self {
        StudyConfig {
            seed: 20_170_501,
            period: StudyPeriod::new(conncar_types::DayOfWeek::Monday, 28)
                .expect("nonzero days"),
            region: RegionConfig::default(),
            fleet: FleetConfig::default(),
            background: BackgroundLoadConfig::default(),
            faults: FaultConfig {
                // Loss days scaled into the second half of the window.
                loss_days: vec![17, 18, 24],
                ..FaultConfig::default()
            },
            clean: CleanConfig::default(),
            truncation: Duration::from_secs(600),
        }
    }
}

impl StudyConfig {
    /// Doc-test / unit-test scale: 120 cars over 7 days in the small
    /// region. Finishes in a couple of seconds even in debug builds.
    pub fn tiny() -> StudyConfig {
        StudyConfig {
            period: StudyPeriod::new(conncar_types::DayOfWeek::Monday, 7).expect("nonzero"),
            region: RegionConfig::small(),
            fleet: FleetConfig {
                cars: 120,
                ..FleetConfig::default()
            },
            faults: FaultConfig {
                loss_days: vec![4],
                ..FaultConfig::default()
            },
            ..StudyConfig::default()
        }
    }

    /// Integration-test scale: 400 cars over 14 days in the small
    /// region.
    pub fn small() -> StudyConfig {
        StudyConfig {
            period: StudyPeriod::new(conncar_types::DayOfWeek::Monday, 14).expect("nonzero"),
            region: RegionConfig::small(),
            fleet: FleetConfig {
                cars: 400,
                ..FleetConfig::default()
            },
            faults: FaultConfig {
                loss_days: vec![9, 10, 12],
                ..FaultConfig::default()
            },
            ..StudyConfig::default()
        }
    }

    /// The paper's own scale: 90 days. Car count stays configurable —
    /// the full million is reachable but takes hours; the default here
    /// is 10 000, enough for every distribution to stabilize.
    pub fn paper() -> StudyConfig {
        StudyConfig {
            period: StudyPeriod::PAPER,
            fleet: FleetConfig {
                cars: 10_000,
                ..FleetConfig::default()
            },
            faults: FaultConfig::default(), // loss days 55, 56, 66
            ..StudyConfig::default()
        }
    }

    /// Validate cross-field constraints.
    pub fn validate(&self) -> Result<()> {
        self.fleet.mix.validate()?;
        if self.truncation.is_zero() {
            return Err(conncar_types::Error::InvalidConfig {
                what: "truncation",
                why: "truncation cap must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Everything a study run produces.
#[derive(Debug)]
pub struct StudyData {
    /// The configuration that produced this study.
    pub config: StudyConfig,
    /// The synthetic region.
    pub region: Region,
    /// Ground-truth personas (never available to the paper's authors;
    /// used here for validation and policy inputs).
    pub personas: Vec<Persona>,
    /// Background-load model.
    pub background: BackgroundLoad,
    /// Car-generated PRB load.
    pub ledger: PrbLedger,
    /// The dataset as "collected": faults included.
    pub dirty: CdrDataset,
    /// The dataset after §3 pre-processing — what analyses consume.
    pub clean: CdrDataset,
    /// What fault injection did (ground truth for methodology tests).
    pub fault_report: FaultReport,
    /// What cleaning removed.
    pub clean_report: CleanReport,
}

impl StudyData {
    /// Run the full pipeline.
    pub fn generate(cfg: &StudyConfig) -> Result<StudyData> {
        cfg.validate()?;
        let seeds = SeedSplitter::new(cfg.seed);
        let region = Region::generate(&cfg.region, seeds.domain("region"));
        let background = BackgroundLoad::new(
            BackgroundLoadConfig {
                seed: seeds.domain("background"),
                ..cfg.background.clone()
            },
            cfg.period,
            region.timezone().offset_hours(),
        );
        let fleet = FleetGenerator::new(cfg.fleet.clone())?;
        let data = fleet.generate(&region, cfg.period, seeds.domain("fleet"));
        let truth = CdrDataset::from_connections(cfg.period, data.connections);
        let injector = FaultInjector::new(cfg.faults.clone(), seeds.domain("faults"));
        let (dirty, fault_report) = injector.inject(&truth);
        let (clean, clean_report) = Cleaner::new(cfg.clean.clone()).clean(&dirty);
        Ok(StudyData {
            config: cfg.clone(),
            region,
            personas: data.personas,
            background,
            ledger: data.ledger,
            dirty,
            clean,
            fault_report,
            clean_report,
        })
    }

    /// The network-load view used by every busy-hour analysis.
    pub fn load_model(&self) -> NetworkLoadModel<'_> {
        NetworkLoadModel::new(&self.ledger, &self.background, self.region.deployment())
    }

    /// Fleet size (including never-connected cars).
    pub fn total_cars(&self) -> usize {
        self.personas.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_study_end_to_end() {
        let study = StudyData::generate(&StudyConfig::tiny()).unwrap();
        assert_eq!(study.total_cars(), 120);
        assert!(study.clean.len() > 100, "{} records", study.clean.len());
        // Cleaning only ever removes records.
        assert!(study.clean.len() <= study.dirty.len());
        assert_eq!(
            study.clean.len()
                + study.clean_report.dropped_glitches
                + study.clean_report.dropped_malformed,
            study.dirty.len()
        );
        // Every injected glitch is caught (plus possibly a few genuine
        // exactly-1-hour records).
        assert!(study.clean_report.dropped_glitches >= study.fault_report.hour_glitches);
        // Loss day visible: fewer records that day than the day before.
        let count_day = |d: u64| {
            study
                .dirty
                .records()
                .iter()
                .filter(|r| r.start.day() == d)
                .count()
        };
        assert!(count_day(4) < count_day(3));
    }

    #[test]
    fn same_seed_same_study() {
        let a = StudyData::generate(&StudyConfig::tiny()).unwrap();
        let b = StudyData::generate(&StudyConfig::tiny()).unwrap();
        assert_eq!(a.clean.records(), b.clean.records());
        assert_eq!(a.dirty.records(), b.dirty.records());
        assert_eq!(a.fault_report, b.fault_report);
    }

    #[test]
    fn different_seed_different_study() {
        let mut cfg = StudyConfig::tiny();
        cfg.seed += 1;
        let a = StudyData::generate(&StudyConfig::tiny()).unwrap();
        let b = StudyData::generate(&cfg).unwrap();
        assert_ne!(a.clean.records(), b.clean.records());
    }

    #[test]
    fn clean_has_no_exact_hour_records() {
        let study = StudyData::generate(&StudyConfig::tiny()).unwrap();
        assert!(study
            .clean
            .records()
            .iter()
            .all(|r| r.duration().as_secs() != 3_600));
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = StudyConfig::tiny();
        cfg.truncation = Duration::ZERO;
        assert!(StudyData::generate(&cfg).is_err());
        let mut cfg = StudyConfig::tiny();
        cfg.fleet.mix.weights[0] = 2.0;
        assert!(StudyData::generate(&cfg).is_err());
    }

    #[test]
    fn load_model_is_live() {
        let study = StudyData::generate(&StudyConfig::tiny()).unwrap();
        let model = study.load_model();
        let r = &study.clean.records()[0];
        let bin = conncar_types::BinIndex::containing(r.start);
        let u = model.utilization(r.cell, bin);
        assert!((0.0..=1.0).contains(&u));
    }
}

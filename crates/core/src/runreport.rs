//! End-to-end accounting for one study run.
//!
//! The collection plane loses, damages and fabricates records in ways
//! the cleaning stages are supposed to undo. A [`RunReport`] stitches
//! the per-stage reports together — what fault injection did
//! ([`FaultReport`]), what the corruption-tolerant ingest salvaged
//! ([`IngestReport`]), what cleaning removed ([`CleanReport`]) — and
//! measures how faithfully the cleaned dataset recovered the ground
//! truth, per fault class and in aggregate.

use conncar_cdr::{CdrRecord, CleanReport, FaultReport, IngestReport};
use conncar_obs::CounterRegistry;
use serde::{Deserialize, Serialize};

/// One study run's records-in/records-out ledger.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Ground-truth records the fleet actually produced.
    pub records_truth: usize,
    /// Records after record-level fault injection (duplicates and
    /// overlap ghosts add, loss days subtract).
    pub records_collected: usize,
    /// Records that survived the wire and reached the cleaner. Equal to
    /// `records_collected` when no wire faults are configured.
    pub records_delivered: usize,
    /// Records in the cleaned dataset the analyses consume.
    pub records_clean: usize,
    /// What the injector did (ground truth for the recovery claims).
    pub fault: FaultReport,
    /// What the tolerant ingest path salvaged and gave up on.
    pub ingest: IngestReport,
    /// What each cleaning stage removed.
    pub clean: CleanReport,
    /// Records held in the cleaner's quarantine (equals the clean
    /// report's total drops).
    pub quarantined: usize,
    /// Ground-truth records absent from the cleaned dataset
    /// (unrecoverable: lost days, corrupt chunks, glitched records).
    pub truth_missing_from_clean: usize,
    /// Cleaned records that match no ground-truth record (damage that
    /// slipped through: sticky stretches, surviving ghosts).
    pub clean_not_in_truth: usize,
}

impl RunReport {
    /// Whether every record is accounted for, per pipeline leg:
    ///
    /// * wire: records written = yielded + lost-to-corruption +
    ///   lost-to-truncation + unparseable (trivially true when the wire
    ///   leg didn't run);
    /// * cleaning: records delivered = records kept + records dropped,
    ///   and the quarantine holds exactly the drops.
    pub fn reconciles(&self) -> bool {
        let wire_ok = if self.ingest == IngestReport::default() {
            self.records_delivered == self.records_collected
        } else {
            self.ingest.records_accounted() == self.records_collected as u64
        };
        let clean_ok =
            self.records_delivered == self.records_clean + self.clean.dropped_total();
        wire_ok && clean_ok && self.quarantined == self.clean.dropped_total()
    }

    /// Fraction of ground-truth records recovered exactly in the clean
    /// dataset (1.0 = perfect recovery).
    pub fn fidelity(&self) -> f64 {
        if self.records_truth == 0 {
            return 1.0;
        }
        1.0 - self.truth_missing_from_clean as f64 / self.records_truth as f64
    }

    /// Account the run-level ledger into a registry under the `run.*`
    /// keys. The embedded stage reports are *not* re-recorded here —
    /// they account themselves via their own `record_counters` as the
    /// pipeline runs, and [`RunReport::agrees_with_counters`] checks the
    /// two against each other.
    pub fn record_counters(&self, reg: &mut CounterRegistry) {
        reg.add("run.records_truth", self.records_truth as u64);
        reg.add("run.records_collected", self.records_collected as u64);
        reg.add("run.records_delivered", self.records_delivered as u64);
        reg.add("run.records_clean", self.records_clean as u64);
        reg.add("run.quarantined", self.quarantined as u64);
        reg.add(
            "run.truth_missing_from_clean",
            self.truth_missing_from_clean as u64,
        );
        reg.add("run.clean_not_in_truth", self.clean_not_in_truth as u64);
    }

    /// Whether this ledger and a registry populated by the pipeline
    /// stages tell the same story: truth count, salvage yield, per-stage
    /// drops and quarantine classes must all match exactly. The study
    /// generator asserts this before returning, so the rendered report
    /// and `RUN_OBS.json` can never diverge.
    pub fn agrees_with_counters(&self, reg: &CounterRegistry) -> bool {
        let wire_ok = if self.ingest == IngestReport::default() {
            true
        } else {
            reg.get("ingest.records_yielded") == self.records_delivered as u64
        };
        reg.get("generate.records_emitted") == self.records_truth as u64
            && wire_ok
            && reg.sum_prefix("clean.") == self.clean.dropped_total() as u64
            && reg.sum_prefix("quarantine.") == self.quarantined as u64
            && reg.get("fault.hour_glitches") == self.fault.hour_glitches as u64
            && reg.get("ingest.chunks_skipped") == self.ingest.chunks_skipped as u64
    }
}

/// Multiset difference between ground truth and the cleaned dataset:
/// `(truth records missing from clean, clean records not in truth)`.
/// Exact duplicates count once per copy.
pub fn dataset_divergence(truth: &[CdrRecord], clean: &[CdrRecord]) -> (usize, usize) {
    let key = |r: &CdrRecord| (r.car.0, r.start.as_secs(), r.cell, r.end.as_secs());
    let mut a: Vec<_> = truth.iter().map(key).collect();
    let mut b: Vec<_> = clean.iter().map(key).collect();
    a.sort_unstable();
    b.sort_unstable();
    let (mut i, mut j) = (0, 0);
    let (mut missing, mut extra) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                missing += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                extra += 1;
                j += 1;
            }
        }
    }
    missing += a.len() - i;
    extra += b.len() - j;
    (missing, extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::{BaseStationId, CarId, Carrier, CellId, Timestamp};

    fn rec(car: u32, start: u64, end: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(car),
            cell: CellId::new(BaseStationId(1), 0, Carrier::C3),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(end),
        }
    }

    #[test]
    fn divergence_counts_multiset_differences() {
        let truth = vec![rec(1, 0, 10), rec(1, 20, 30), rec(2, 0, 10)];
        let clean = vec![rec(1, 0, 10), rec(2, 0, 10), rec(3, 5, 15)];
        let (missing, extra) = dataset_divergence(&truth, &clean);
        assert_eq!(missing, 1); // rec(1, 20, 30)
        assert_eq!(extra, 1); // rec(3, 5, 15)
        // Duplicates count per copy.
        let (missing, extra) = dataset_divergence(&[rec(1, 0, 10); 3], &[rec(1, 0, 10)]);
        assert_eq!((missing, extra), (2, 0));
    }

    #[test]
    fn empty_report_reconciles_perfectly() {
        let r = RunReport::default();
        assert!(r.reconciles());
        assert_eq!(r.fidelity(), 1.0);
    }
}

//! Render every table and figure of the paper as terminal text.
//!
//! Each renderer takes the corresponding analysis result and produces a
//! self-contained block: a caption line, then an aligned table or a
//! unicode plot. The goal is a side-by-side read against the paper —
//! same rows, same series, same units.

use crate::analyses::StudyAnalyses;
use crate::render::{bar, line_plot, pct, sparkline, table, weekly_heatmap};
use conncar_analysis::cluster::BusyCellClustering;
use conncar_analysis::concurrency::CellDayGantt;
use conncar_analysis::duration::ConnectionDurationResult;
use conncar_analysis::handover::HandoverResult;
use conncar_analysis::matrix::reference_matrices;
use conncar_analysis::segmentation::{BusyTimeResult, SegmentRow};
use conncar_analysis::temporal::{ConnectedTimeResult, DailyPresenceResult, WeekdayRow};
use conncar_fota::GreedyResult;
use conncar_types::{CarId, ALL_CARRIERS};

/// Figure 1: PRB utilization on the two test cells, test day vs average.
pub fn render_fig1(r: &GreedyResult) -> String {
    let mut out = String::from(
        "Figure 1 — greedy download saturates radio cells (U_PRB by time of day)\n",
    );
    for i in 0..2 {
        out.push_str(&format!(
            "cell {} test    {}\n",
            i + 1,
            sparkline(&r.test_series[i])
        ));
        out.push_str(&format!(
            "cell {} average {}\n",
            i + 1,
            sparkline(&r.average_series[i])
        ));
        out.push_str(&format!(
            "cell {}: test-window mean {} vs baseline {}\n",
            i + 1,
            pct(r.test_window_mean(i)),
            pct(r.baseline_window_mean(i)),
        ));
    }
    out.push_str(&format!(
        "test starts {} and lasts {}\n",
        r.experiment.start, r.experiment.duration
    ));
    out
}

/// Figure 2: % cars and % cells per study day, with trend lines.
pub fn render_fig2(p: &DailyPresenceResult) -> String {
    let cars = p.car_fractions();
    let cells = p.cell_fractions();
    let mut out = String::from("Figure 2 — cars and cells on the network per day\n");
    out.push_str(&format!("% cars  {}\n", sparkline(&cars)));
    out.push_str(&format!("% cells {}\n", sparkline(&cells)));
    if let Some(t) = &p.cars_trend {
        out.push_str(&format!(
            "cars trend:  y = {:+.5}·day + {:.4}, R² = {:.4}\n",
            t.slope, t.intercept, t.r2
        ));
    }
    if let Some(t) = &p.cells_trend {
        out.push_str(&format!(
            "cells trend: y = {:+.5}·day + {:.4}, R² = {:.4}\n",
            t.slope, t.intercept, t.r2
        ));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    out.push_str(&format!(
        "means: {} of cars, {} of cells on a given day\n",
        pct(mean(&cars)),
        pct(mean(&cells))
    ));
    out
}

/// Table 1: weekday means and standard deviations.
pub fn render_table1(rows: &[WeekdayRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.weekday.map(|d| d.name().to_string()).unwrap_or_else(|| "Overall".into()),
                pct(r.cells_mean),
                pct(r.cells_stdev),
                pct(r.cars_mean),
                pct(r.cars_stdev),
            ]
        })
        .collect();
    format!(
        "Table 1 — usage of cells by cars and occurrence of cars per day\n{}",
        table(
            &["Day", "%cells mean", "%cells stdev", "%cars mean", "%cars stdev"],
            &body
        )
    )
}

/// Figure 3: CDF of per-car connected time as % of the study.
pub fn render_fig3(r: &ConnectedTimeResult) -> String {
    let mut out = String::from("Figure 3 — cars' total time on the network (CDF)\n");
    out.push_str("full:\n");
    out.push_str(&line_plot(&r.full.curve(60), 8, 60));
    out.push_str("truncated:\n");
    out.push_str(&line_plot(&r.truncated.curve(60), 8, 60));
    let (mf, mt) = r.means();
    let (p995f, p995t) = r.p995();
    out.push_str(&format!(
        "means: full {} truncated {} | p99.5: full {} truncated {}\n",
        pct(mf),
        pct(mt),
        pct(p995f.unwrap_or(0.0)),
        pct(p995t.unwrap_or(0.0)),
    ));
    out
}

/// Figure 4: the three reference 24×7 matrices.
pub fn render_fig4() -> String {
    let refs = reference_matrices();
    format!(
        "Figure 4 — significant time ranges in the week\n\
         commute peak times:\n{}\nnetwork peak times:\n{}\nweekend times:\n{}",
        weekly_heatmap(&refs.commute_peaks.values),
        weekly_heatmap(&refs.network_peaks.values),
        weekly_heatmap(&refs.weekend.values),
    )
}

/// Figure 5: usage matrices of the three sample cars.
pub fn render_fig5(samples: &[(CarId, conncar_analysis::matrix::WeeklyMatrix)]) -> String {
    let mut out = String::from("Figure 5 — usage patterns from 3 sample cars\n");
    for (car, m) in samples {
        out.push_str(&format!(
            "{car} (regularity {:.2}):\n{}",
            m.regularity(),
            weekly_heatmap(&m.normalized().values)
        ));
    }
    out
}

/// Figure 6: days-on-network histogram.
pub fn render_fig6(hist: &[u64]) -> String {
    let mut out = String::from("Figure 6 — number of days cars were on the network\n");
    let max = hist.iter().copied().max().unwrap_or(0) as f64;
    // Bucket into ~15 rows for terminal friendliness.
    let bucket = (hist.len() / 15).max(1);
    let mut d = 1; // day counts start at 1; index 0 is never-active
    while d < hist.len() {
        let hi = (d + bucket).min(hist.len());
        let count: u64 = hist[d..hi].iter().sum();
        out.push_str(&format!(
            "{:>3}-{:<3} {:>7}  {}\n",
            d,
            hi - 1,
            count,
            bar(count as f64, max * bucket as f64, 40)
        ));
        d = hi;
    }
    out
}

/// Table 2: car segmentation at the two rarity cutoffs.
pub fn render_table2(rows: &[SegmentRow; 2]) -> String {
    let mut body = Vec::new();
    for row in rows {
        body.push(vec![
            format!("Rare (≤ {} days)", row.cutoff_days),
            pct(row.rare[0]),
            pct(row.rare[1]),
            pct(row.rare[2]),
            pct(row.rare_total()),
        ]);
        body.push(vec![
            format!("Common ({}+ days)", row.cutoff_days),
            pct(row.common[0]),
            pct(row.common[1]),
            pct(row.common[2]),
            pct(row.common_total()),
        ]);
    }
    format!(
        "Table 2 — car segmentation\n{}",
        table(&["Segment", "Busy", "Non-Busy", "Both", "Total"], &body)
    )
}

/// Figure 7: time cars spend in busy cells.
pub fn render_fig7(r: &BusyTimeResult) -> String {
    let mut out = String::from("Figure 7 — network conditions that cars encounter\n");
    if let Some(deciles) = r.ecdf.deciles() {
        out.push_str("deciles of % time in busy cells (q0..q100 by 10):\n  ");
        for d in deciles {
            out.push_str(&format!("{:>6}", pct(d)));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "cars > 50% of time in busy cells: {}; ~100%: {}\n",
        pct(r.over_half),
        pct(r.always_busy)
    ));
    out
}

/// Figure 8: one cell's day of per-car connections.
pub fn render_fig8(g: &CellDayGantt) -> String {
    let mut out = format!(
        "Figure 8 — concurrent cars in cell {} over day {}\n\
         {} distinct cars; peak 15-min bin {} with {} concurrent cars\n",
        g.cell, g.day, g.distinct_cars, g.peak.0, g.peak.1
    );
    // Density strip: connections per hour of day.
    let mut per_hour = [0.0f64; 24];
    for &(_, s, e) in &g.spans {
        per_hour[(s / 3_600).min(23) as usize] += 1.0;
        let _ = e;
    }
    out.push_str(&format!("connections by hour: {}\n", sparkline(&per_hour)));
    out
}

/// Figure 9: per-cell connection duration CDF.
pub fn render_fig9(r: &ConnectionDurationResult) -> String {
    let mut out = String::from("Figure 9 — duration of cars' connections per radio cell\n");
    out.push_str(&line_plot(&r.full.curve(60), 8, 60));
    let (mf, mt) = r.means();
    out.push_str(&format!(
        "median {:.0} s; P(≤ {} s) = {}; mean full {:.0} s, truncated {:.0} s\n",
        r.median_secs().unwrap_or(0.0),
        r.cap.as_secs(),
        pct(r.percentile_at_cap()),
        mf,
        mt
    ));
    out
}

/// Figure 10: two cells' weekly concurrency vs load.
pub fn render_fig10(cells: &[(String, Vec<f64>, Vec<f64>)]) -> String {
    // (label, concurrent-car profile 672 bins, PRB profile 672 bins)
    let mut out = String::from("Figure 10 — concurrent cars on two sample radios (one week)\n");
    for (label, cars, prb) in cells {
        // Downsample 672 bins to 96 columns (hourly-ish strip + margin).
        let ds = |v: &[f64]| -> Vec<f64> {
            v.chunks(7).map(|c| c.iter().sum::<f64>() / c.len() as f64).collect()
        };
        out.push_str(&format!("{label}\n  cars {}\n  PRB  {}\n", sparkline(&ds(cars)), sparkline(&ds(prb))));
    }
    out
}

/// Figure 11: the two busy-cell clusters.
pub fn render_fig11(c: &BusyCellClustering) -> String {
    let mut out = format!(
        "Figure 11 — concurrent cars on all busy radios (mean weekly PRB ≥ {})\n\
         {} qualifying cells\n",
        pct(c.min_mean_prb),
        c.qualifying_cells
    );
    for (i, cluster) in c.clusters.iter().enumerate() {
        out.push_str(&format!(
            "cluster {} ({} cells, peak {:.1} concurrent cars)\n  {}\n",
            i + 1,
            cluster.cells.len(),
            cluster.peak_cars,
            sparkline(&cluster.mean_profile)
        ));
    }
    if c.clusters.len() == 2 {
        let lo = c.clusters[0].peak_cars.max(1e-9);
        out.push_str(&format!(
            "cluster-2 : cluster-1 concurrency ratio ≈ {:.1}×; size ratio {:.1}×\n",
            c.clusters[1].peak_cars / lo,
            c.clusters[0].cells.len() as f64 / c.clusters[1].cells.len().max(1) as f64
        ));
    }
    out
}

/// §4.5: handover percentiles and taxonomy.
pub fn render_sec45(r: &HandoverResult) -> String {
    let (p70, p90) = r.p70_p90();
    let mut out = format!(
        "§4.5 — handovers per mobility session ({} sessions)\n\
         median {:.0}, p70 {:.0}, p90 {:.0}\n",
        r.sessions,
        r.median().unwrap_or(0.0),
        p70.unwrap_or(0.0),
        p90.unwrap_or(0.0)
    );
    for (kind, count) in conncar_types::id::HandoverKind::ALL.iter().zip(r.by_kind) {
        out.push_str(&format!(
            "  {:<20} {:>9} ({})\n",
            kind.label(),
            count,
            pct(r.kind_fraction(*kind))
        ));
    }
    out
}

/// Table 3: carrier usage.
pub fn render_table3(u: &conncar_analysis::carrier::CarrierUsage) -> String {
    let mut cars_row = vec!["Cars (%)".to_string()];
    let mut time_row = vec!["Time (%)".to_string()];
    for c in ALL_CARRIERS {
        cars_row.push(format!("{:.3}%", u.cars_pct(c)));
        time_row.push(format!("{:.3}%", u.time_pct(c)));
    }
    format!(
        "Table 3 — carrier use of connected cars\n{}",
        table(
            &["Carrier", "C1", "C2", "C3", "C4", "C5"],
            &[cars_row, time_row]
        )
    )
}

/// The full study report: every artifact in paper order.
pub fn render_full_report(analyses: &StudyAnalyses) -> String {
    let mut out = String::new();
    out.push_str(&render_fig2(&analyses.presence));
    out.push('\n');
    out.push_str(&render_table1(&analyses.weekday_table));
    out.push('\n');
    out.push_str(&render_fig3(&analyses.connected_time));
    out.push('\n');
    out.push_str(&render_fig4());
    out.push('\n');
    out.push_str(&render_fig5(&analyses.sample_cars));
    out.push('\n');
    out.push_str(&render_fig6(&analyses.days_histogram));
    out.push('\n');
    out.push_str(&render_table2(&analyses.segmentation));
    out.push('\n');
    out.push_str(&render_fig7(&analyses.busy_time));
    out.push('\n');
    out.push_str(&render_fig9(&analyses.durations));
    out.push('\n');
    if let Some(c) = &analyses.clustering {
        out.push_str(&render_fig11(c));
        out.push('\n');
    }
    out.push_str(&render_sec45(&analyses.handovers));
    out.push('\n');
    out.push_str(&render_table3(&analyses.carriers));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn full_report_renders_every_section() {
        let (_study, analyses) = crate::testutil::tiny_fixture();
        let report = render_full_report(analyses);
        for needle in [
            "Figure 2",
            "Table 1",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Table 2",
            "Figure 7",
            "Figure 9",
            "§4.5",
            "Table 3",
        ] {
            assert!(report.contains(needle), "missing section {needle}");
        }
        // Sanity: percentages render, sparklines render.
        assert!(report.contains('%'));
        assert!(report.contains('▁') || report.contains('█'));
    }

    #[test]
    fn fig4_is_static_and_complete() {
        let s = render_fig4();
        assert!(s.contains("commute peak times"));
        assert!(s.contains("weekend times"));
        // 3 heatmaps × 25 lines each plus captions.
        assert!(s.lines().count() > 75);
    }
}

//! Out-of-core streaming build: the paper-scale substrate in bounded
//! memory.
//!
//! [`crate::study::StudyData::generate`] materializes the whole fleet's
//! connection trace — truth, dirty and clean — as flat vectors before
//! anything is stored. That is fine at fixture scale and hopeless at
//! the paper's (one million cars, 1.1 B records). This module rebuilds
//! the generate → fault → clean → store pipeline as a chunked stream:
//!
//! 1. the fleet generator emits cars in fixed-size chunks
//!    ([`conncar_fleet::FleetGenerator::generate_chunk`] — byte-identical
//!    concatenation to a whole-fleet run);
//! 2. [`conncar_cdr::FaultStream`] applies the record-level fault
//!    classes per chunk, drawing from the same RNG streams in the same
//!    order as the batch injector;
//! 3. the staged [`conncar_cdr::Cleaner`] runs per chunk (every stage
//!    is per-car-local, and chunks are car-disjoint);
//! 4. [`conncar_store::StoreBuilder`] lays the cleaned rows into
//!    time-partitioned, compact-encoded shard segments as they arrive.
//!
//! Peak memory scales with `build.chunk_cars`, not with the fleet size;
//! only the store (compact columns), the personas, the PRB ledger and
//! the per-stage reports survive the loop.
//!
//! **Exactness.** For every stock configuration (no duplicate or
//! overlap ghosts) the streamed dirty and clean datasets are
//! byte-identical to the batch pipeline's, for any chunk size — the
//! workspace equivalence test enforces it. Two documented deviations:
//! wire faults are rejected up front (they act on one whole encoded
//! stream; use the batch pipeline), and the PRB ledger's f32 bins are
//! merged chunk-major, which can differ from a batch run in the last
//! float bits — the same order-sensitivity the batch path already has
//! across thread counts, and far below what any rendered figure
//! resolves.

use crate::runreport::{dataset_divergence, RunReport};
use crate::study::{BuildConfig, StudyConfig, StudyData};
use conncar_cdr::{
    CdrDataset, CleanReport, Cleaner, FaultReport, FaultStream, IngestReport, Quarantine,
    StreamDigest,
};
use conncar_fleet::{FleetGenerator, Persona};
use conncar_geo::Region;
use conncar_obs::{CounterRegistry, MonotonicClock, SharedClock};
use conncar_radio::{BackgroundLoad, BackgroundLoadConfig, PrbLedger};
use conncar_store::{CdrStore, Filter, StoreBuilder};
use conncar_types::{Result, SeedSplitter};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One chunk's footprint in a streamed build. Recorded runs carry these
/// in the trace envelope so a replay re-chunks identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkSpan {
    /// First car id in the chunk (inclusive).
    pub car_lo: u32,
    /// One past the last car id in the chunk (exclusive).
    pub car_hi: u32,
    /// Ground-truth records the chunk produced.
    pub truth_rows: u64,
    /// Cleaned records the chunk appended to the store.
    pub clean_rows: u64,
}

/// Everything a streamed build retains once the chunk loop is done.
///
/// Deliberately *not* a [`StudyData`]: the streamed path never holds
/// the dirty or clean datasets whole — the clean rows live only in the
/// store's compact columns, and the dirty rows only as digests and
/// ledger counts. [`StreamedBuild::into_study`] materializes a
/// [`StudyData`] back out of the store for fixture-scale equivalence
/// checks.
#[derive(Debug)]
pub struct StreamedBuild {
    /// The configuration that produced this build.
    pub config: StudyConfig,
    /// The resolved build parameters (config's, or the defaults).
    pub build: BuildConfig,
    /// The synthetic region.
    pub region: Region,
    /// Ground-truth personas, in car order.
    pub personas: Vec<Persona>,
    /// Background-load model.
    pub background: BackgroundLoad,
    /// Car-generated PRB load (chunk-major f32 merge; see module docs).
    pub ledger: PrbLedger,
    /// The cleaned dataset, laid into time-partitioned shard segments.
    pub store: CdrStore,
    /// What fault injection did, summed over all chunks.
    pub fault_report: FaultReport,
    /// What cleaning removed, summed over all chunks.
    pub clean_report: CleanReport,
    /// The removed records themselves, in chunk order.
    pub quarantine: Quarantine,
    /// End-to-end record ledger (reconciled and counter-checked exactly
    /// like the batch path's).
    pub run_report: RunReport,
    /// The stage counters the run report was checked against.
    pub counters: CounterRegistry,
    /// Per-chunk spans, in build order.
    pub chunks: Vec<ChunkSpan>,
    /// [`StreamDigest`] of the ground-truth record stream.
    pub truth_digest: u64,
    /// [`StreamDigest`] of the dirty (as-collected) record stream.
    pub dirty_digest: u64,
    /// [`StreamDigest`] of the cleaned record stream.
    pub clean_digest: u64,
}

/// Run the streaming build with a monotonic clock.
pub fn build_streamed(cfg: &StudyConfig, shards: usize) -> Result<StreamedBuild> {
    build_streamed_with_clock(cfg, shards, Arc::new(MonotonicClock::new()))
}

/// [`build_streamed`] with an injected clock (determinism tests and
/// recorded runs pass a `NullClock`).
pub fn build_streamed_with_clock(
    cfg: &StudyConfig,
    shards: usize,
    clock: SharedClock,
) -> Result<StreamedBuild> {
    cfg.validate()?;
    let build = cfg.build.clone().unwrap_or_default();
    // Seed layout identical to the batch pipeline: the streamed world
    // is the same world.
    let seeds = SeedSplitter::new(cfg.seed);
    let region = Region::generate(&cfg.region, seeds.domain("region"));
    let background = BackgroundLoad::new(
        BackgroundLoadConfig {
            seed: seeds.domain("background"),
            ..cfg.background.clone()
        },
        cfg.period,
        region.timezone().offset_hours(),
    );
    let fleet = FleetGenerator::new(cfg.fleet.clone())?;
    let fleet_seed = seeds.domain("fleet");
    let day_factors = fleet.day_factors(cfg.period, fleet_seed);
    let mut faults = FaultStream::new(cfg.faults.clone(), seeds.domain("faults"), cfg.period)?;
    let cleaner = Cleaner::new(cfg.clean.clone());
    let mut builder = StoreBuilder::with_clock(
        cfg.period,
        shards,
        u64::from(build.segment_hours) * 3600,
        clock,
    )?;

    let cars = cfg.fleet.cars;
    let mut personas: Vec<Persona> = Vec::with_capacity(cars as usize);
    let mut ledger = PrbLedger::new(cfg.period);
    let mut clean_report = CleanReport::default();
    let mut quarantine = Quarantine::default();
    let mut counters = CounterRegistry::new();
    let mut chunks = Vec::new();
    let mut truth_digest = StreamDigest::new(cfg.period);
    let mut dirty_digest = StreamDigest::new(cfg.period);
    let mut clean_digest = StreamDigest::new(cfg.period);
    let (mut records_truth, mut records_collected, mut records_clean) = (0usize, 0usize, 0usize);
    let (mut truth_missing_from_clean, mut clean_not_in_truth) = (0usize, 0usize);

    let mut lo = 0u32;
    while lo < cars {
        let hi = lo.saturating_add(build.chunk_cars).min(cars);
        let chunk = fleet.generate_chunk(&region, cfg.period, fleet_seed, &day_factors, lo, hi);
        ledger.merge(&chunk.ledger);
        personas.extend(chunk.personas);
        let truth = CdrDataset::from_connections(cfg.period, chunk.connections);
        let dirty = CdrDataset::new(cfg.period, faults.inject_chunk(truth.records()));
        let outcome = cleaner.clean_full(&dirty);
        // Chunks are car-disjoint and the divergence key leads with the
        // car id, so per-chunk divergences sum to the whole-run counts.
        let (missing, extra) = dataset_divergence(truth.records(), outcome.dataset.records());
        truth_missing_from_clean += missing;
        clean_not_in_truth += extra;
        truth_digest.update(truth.records());
        dirty_digest.update(dirty.records());
        clean_digest.update(outcome.dataset.records());
        records_truth += truth.len();
        records_collected += dirty.len();
        records_clean += outcome.dataset.len();
        counters.add("generate.records_emitted", truth.len() as u64);
        clean_report.merge(&outcome.report);
        quarantine.merge(outcome.quarantine);
        builder.append_chunk(&outcome.dataset)?;
        chunks.push(ChunkSpan {
            car_lo: lo,
            car_hi: hi,
            truth_rows: truth.len() as u64,
            clean_rows: outcome.dataset.len() as u64,
        });
        lo = hi;
    }

    let fault_report = faults.finish();
    let ingest_report = IngestReport::default();
    fault_report.record_counters(&mut counters);
    ingest_report.record_counters(&mut counters);
    clean_report.record_counters(&mut counters);
    quarantine.record_counters(&mut counters);
    let run_report = RunReport {
        records_truth,
        records_collected,
        // The wire leg never runs on the streamed path (wire faults are
        // rejected up front), so delivered = collected, as in the plain
        // batch path.
        records_delivered: records_collected,
        records_clean,
        fault: fault_report.clone(),
        ingest: ingest_report,
        clean: clean_report,
        quarantined: quarantine.len(),
        truth_missing_from_clean,
        clean_not_in_truth,
    };
    run_report.record_counters(&mut counters);
    assert!(
        run_report.reconciles(),
        "streamed run ledger does not reconcile: {run_report:?}"
    );
    assert!(
        run_report.agrees_with_counters(&counters),
        "streamed run ledger disagrees with the stage counters: {run_report:?}"
    );

    Ok(StreamedBuild {
        config: cfg.clone(),
        build,
        region,
        personas,
        background,
        ledger,
        store: builder.finish(),
        fault_report,
        clean_report,
        quarantine,
        run_report,
        counters,
        chunks,
        truth_digest: truth_digest.finish(),
        dirty_digest: dirty_digest.finish(),
        clean_digest: clean_digest.finish(),
    })
}

impl StreamedBuild {
    /// Rows laid into the store.
    pub fn rows(&self) -> usize {
        self.store.len()
    }

    /// Materialize a `(StudyData, CdrStore)` pair back out of the
    /// streamed build, for fixture-scale checks and analyses.
    ///
    /// The clean dataset is rebuilt *from the store's columns* (so this
    /// also exercises the packed-segment decode path); `dirty` is left
    /// empty — the streamed build keeps what cleaning removed (the
    /// quarantine) but never the dirty dataset itself, and no analysis
    /// reads `dirty`. Memory cost is the full clean dataset: do not
    /// call this at paper scale.
    pub fn into_study(self) -> (StudyData, CdrStore) {
        let (rows, _) = self.store.collect(&Filter::all());
        let clean = CdrDataset::new(self.store.period(), rows);
        let study = StudyData {
            config: self.config,
            region: self.region,
            personas: self.personas,
            background: self.background,
            ledger: self.ledger,
            dirty: CdrDataset::new(clean.period(), Vec::new()),
            clean,
            fault_report: self.fault_report,
            ingest_report: IngestReport::default(),
            clean_report: self.clean_report,
            quarantine: self.quarantine,
            run_report: self.run_report,
        };
        (study, self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::Error;

    #[test]
    fn streamed_build_matches_batch_on_tiny() {
        let mut cfg = StudyConfig::tiny();
        cfg.build = Some(BuildConfig {
            chunk_cars: 37, // 120 cars -> 4 uneven chunks
            segment_hours: 6,
        });
        let streamed = build_streamed(&cfg, 3).expect("streamed build");
        let batch = StudyData::generate(&cfg).expect("batch build");

        assert_eq!(streamed.run_report, batch.run_report);
        assert_eq!(streamed.quarantine, batch.quarantine);
        assert_eq!(
            streamed.chunks.iter().map(|c| c.truth_rows).sum::<u64>(),
            batch.run_report.records_truth as u64
        );
        assert_eq!(streamed.ledger.touched_count(), batch.ledger.touched_count());
        assert_eq!(
            format!("{:?}", streamed.personas),
            format!("{:?}", batch.personas)
        );

        // The store holds exactly the batch clean dataset.
        let clean_digest = {
            let mut d = StreamDigest::new(cfg.period);
            d.update(batch.clean.records());
            d.finish()
        };
        assert_eq!(streamed.clean_digest, clean_digest);
        let (study, _store) = streamed.into_study();
        assert_eq!(study.clean, batch.clean);
    }

    #[test]
    fn chunk_size_never_changes_the_stream() {
        let base = build_streamed(&StudyConfig::tiny(), 2).expect("default chunking");
        for chunk_cars in [13, 60, 1000] {
            let mut cfg = StudyConfig::tiny();
            cfg.build = Some(BuildConfig {
                chunk_cars,
                segment_hours: 24,
            });
            let b = build_streamed(&cfg, 2).expect("streamed build");
            assert_eq!(b.truth_digest, base.truth_digest, "chunk_cars={chunk_cars}");
            assert_eq!(b.dirty_digest, base.dirty_digest, "chunk_cars={chunk_cars}");
            assert_eq!(b.clean_digest, base.clean_digest, "chunk_cars={chunk_cars}");
            assert_eq!(b.run_report, base.run_report, "chunk_cars={chunk_cars}");
        }
    }

    #[test]
    fn build_config_bounds_are_enforced() {
        for (build, what) in [
            (
                BuildConfig {
                    chunk_cars: 0,
                    segment_hours: 24,
                },
                "build.chunk_cars",
            ),
            (
                BuildConfig {
                    chunk_cars: BuildConfig::MAX_CHUNK_CARS + 1,
                    segment_hours: 24,
                },
                "build.chunk_cars",
            ),
            (
                BuildConfig {
                    chunk_cars: 1000,
                    segment_hours: 0,
                },
                "build.segment_hours",
            ),
            (
                BuildConfig {
                    chunk_cars: 1000,
                    segment_hours: BuildConfig::MAX_SEGMENT_HOURS + 1,
                },
                "build.segment_hours",
            ),
        ] {
            let mut cfg = StudyConfig::tiny();
            cfg.build = Some(build);
            match build_streamed(&cfg, 1) {
                Err(Error::InvalidConfig { what: w, .. }) => assert_eq!(w, what),
                other => panic!("expected InvalidConfig({what}), got {other:?}"),
            }
        }
    }

    #[test]
    fn wire_faults_are_rejected_up_front() {
        let mut cfg = StudyConfig::tiny();
        cfg.faults.corrupt_chunk_p = 0.1;
        match build_streamed(&cfg, 1) {
            Err(Error::InvalidConfig { what, .. }) => assert_eq!(what, "faults"),
            other => panic!("expected InvalidConfig(faults), got {other:?}"),
        }
    }
}

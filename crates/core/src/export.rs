//! Export regenerated artifacts to disk.
//!
//! Each experiment writes a `<id>.txt` (the terminal rendering) and a
//! `<id>.json` (the machine-readable values) into a directory, plus a
//! `manifest.json` describing the run — enough for a notebook or a CI
//! diff job to consume the reproduction without linking Rust.

use crate::experiments::ExperimentOutput;
use crate::study::StudyData;
use conncar_types::Result;
use serde_json::json;
use std::fs;
use std::path::Path;

/// Write every output (plus a manifest) into `dir`, creating it if
/// needed. Returns the number of files written.
pub fn export_all(dir: &Path, study: &StudyData, outputs: &[ExperimentOutput]) -> Result<usize> {
    fs::create_dir_all(dir)?;
    let mut files = 0;
    for o in outputs {
        let id = o.experiment.id().replace('.', "_");
        fs::write(dir.join(format!("{id}.txt")), &o.text)?;
        let pretty = serde_json::to_string_pretty(&o.data)
            .unwrap_or_else(|_| "null".to_string());
        fs::write(dir.join(format!("{id}.json")), pretty)?;
        files += 2;
    }
    let manifest = json!({
        "paper": "Connected cars in cellular network: A measurement study (IMC 2017)",
        "seed": study.config.seed,
        "cars": study.config.fleet.cars,
        "days": study.config.period.days(),
        "records_dirty": study.dirty.len(),
        "records_clean": study.clean.len(),
        "cars_connected": study.clean.car_count(),
        "cells_touched": study.clean.cell_count(),
        "experiments": outputs
            .iter()
            .map(|o| json!({"id": o.experiment.id(), "title": o.experiment.title()}))
            .collect::<Vec<_>>(),
    });
    fs::write(
        dir.join("manifest.json"),
        serde_json::to_string_pretty(&manifest).expect("manifest serializes"),
    )?;
    Ok(files + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::run_all;

    #[test]
    fn exports_every_artifact_and_manifest() {
        let (study, analyses) = crate::testutil::tiny_fixture();
        let outputs = run_all(study, analyses).unwrap();
        let dir = std::env::temp_dir().join(format!("conncar-export-{}", std::process::id()));
        let files = export_all(&dir, study, &outputs).unwrap();
        assert_eq!(files, outputs.len() * 2 + 1);
        // Manifest parses and references every experiment.
        let manifest: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("manifest.json")).unwrap())
                .unwrap();
        assert_eq!(
            manifest["experiments"].as_array().unwrap().len(),
            outputs.len()
        );
        assert_eq!(manifest["cars"], 120);
        // Spot check one pair.
        let txt = std::fs::read_to_string(dir.join("tab3.txt")).unwrap();
        assert!(txt.contains("Table 3"));
        let j: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("tab3.json")).unwrap())
                .unwrap();
        assert!(j["time_frac"].is_array());
        // The dotted section id is sanitized.
        assert!(dir.join("sec4_5.txt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

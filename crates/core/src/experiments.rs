//! The experiment registry: every table and figure of the paper, mapped
//! to a runner that regenerates it from a study.
//!
//! Each [`Experiment`] produces an [`ExperimentOutput`]: the artifact
//! rendered as terminal text plus a machine-readable JSON value, so the
//! benchmark harness and EXPERIMENTS.md can both be generated from the
//! same source of truth.

use crate::analyses::StudyAnalyses;
use crate::report;
use crate::study::StudyData;
use conncar_analysis::concurrency::cell_day_gantt;
use conncar_fota::{greedy_saturation, GreedyExperiment};
use conncar_types::{BinIndex, CellId, Result, BINS_PER_WEEK};
use serde_json::{json, Value};

/// Identifier of one paper artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Experiment {
    Fig1,
    Fig2,
    Tab1,
    Fig3,
    Fig4,
    Fig5,
    Fig6,
    Tab2,
    Fig7,
    Fig8,
    Fig9,
    Fig10,
    Fig11,
    Sec45,
    Tab3,
}

impl Experiment {
    /// Every experiment in paper order.
    pub const ALL: [Experiment; 15] = [
        Experiment::Fig1,
        Experiment::Fig2,
        Experiment::Tab1,
        Experiment::Fig3,
        Experiment::Fig4,
        Experiment::Fig5,
        Experiment::Fig6,
        Experiment::Tab2,
        Experiment::Fig7,
        Experiment::Fig8,
        Experiment::Fig9,
        Experiment::Fig10,
        Experiment::Fig11,
        Experiment::Sec45,
        Experiment::Tab3,
    ];

    /// Stable string id (`fig1`, `tab2`, `sec4.5`, ...).
    pub fn id(self) -> &'static str {
        match self {
            Experiment::Fig1 => "fig1",
            Experiment::Fig2 => "fig2",
            Experiment::Tab1 => "tab1",
            Experiment::Fig3 => "fig3",
            Experiment::Fig4 => "fig4",
            Experiment::Fig5 => "fig5",
            Experiment::Fig6 => "fig6",
            Experiment::Tab2 => "tab2",
            Experiment::Fig7 => "fig7",
            Experiment::Fig8 => "fig8",
            Experiment::Fig9 => "fig9",
            Experiment::Fig10 => "fig10",
            Experiment::Fig11 => "fig11",
            Experiment::Sec45 => "sec4.5",
            Experiment::Tab3 => "tab3",
        }
    }

    /// Paper caption (abbreviated).
    pub fn title(self) -> &'static str {
        match self {
            Experiment::Fig1 => "Greedy download saturates radio cells",
            Experiment::Fig2 => "Cars and cells on the network per day",
            Experiment::Tab1 => "Cell usage and car occurrence by weekday",
            Experiment::Fig3 => "Cars' total time on the network",
            Experiment::Fig4 => "Significant time ranges in the week",
            Experiment::Fig5 => "Usage patterns from 3 sample cars",
            Experiment::Fig6 => "Days cars were on the network",
            Experiment::Tab2 => "Car segmentation",
            Experiment::Fig7 => "Time cars spend in busy cells",
            Experiment::Fig8 => "Concurrent cars in one cell over 24 hours",
            Experiment::Fig9 => "Connection durations per radio cell",
            Experiment::Fig10 => "Concurrent cars on two sample radios",
            Experiment::Fig11 => "Clusters of busy radios",
            Experiment::Sec45 => "Handovers per mobility session",
            Experiment::Tab3 => "Carrier use of connected cars",
        }
    }

    /// Parse a string id.
    pub fn from_id(id: &str) -> Option<Experiment> {
        Experiment::ALL.into_iter().find(|e| e.id() == id)
    }

    /// Run this experiment.
    pub fn run(self, study: &StudyData, analyses: &StudyAnalyses) -> Result<ExperimentOutput> {
        let (text, data) = match self {
            Experiment::Fig1 => run_fig1(study, analyses),
            Experiment::Fig2 => {
                let p = &analyses.presence;
                (
                    report::render_fig2(p),
                    json!({
                        "car_fractions": p.car_fractions(),
                        "cell_fractions": p.cell_fractions(),
                        "cars_trend_slope": p.cars_trend.map(|t| t.slope),
                        "cells_trend_slope": p.cells_trend.map(|t| t.slope),
                    }),
                )
            }
            Experiment::Tab1 => (
                report::render_table1(&analyses.weekday_table),
                serde_json::to_value(&analyses.weekday_table).unwrap_or(Value::Null),
            ),
            Experiment::Fig3 => {
                let r = &analyses.connected_time;
                let (mf, mt) = r.means();
                let (pf, pt) = r.p995();
                (
                    report::render_fig3(r),
                    json!({
                        "mean_full": mf, "mean_truncated": mt,
                        "p995_full": pf, "p995_truncated": pt,
                        "curve_full": r.full.curve(40),
                        "curve_truncated": r.truncated.curve(40),
                    }),
                )
            }
            Experiment::Fig4 => (
                report::render_fig4(),
                serde_json::to_value(conncar_analysis::matrix::reference_matrices())
                    .unwrap_or(Value::Null),
            ),
            Experiment::Fig5 => (
                report::render_fig5(&analyses.sample_cars),
                json!(analyses
                    .sample_cars
                    .iter()
                    .map(|(car, m)| json!({
                        "car": car.0,
                        "regularity": m.regularity(),
                        "total": m.total(),
                    }))
                    .collect::<Vec<_>>()),
            ),
            Experiment::Fig6 => (
                report::render_fig6(&analyses.days_histogram),
                json!({ "histogram": analyses.days_histogram }),
            ),
            Experiment::Tab2 => (
                report::render_table2(&analyses.segmentation),
                serde_json::to_value(analyses.segmentation).unwrap_or(Value::Null),
            ),
            Experiment::Fig7 => {
                let r = &analyses.busy_time;
                (
                    report::render_fig7(r),
                    json!({
                        "deciles": r.ecdf.deciles(),
                        "over_half": r.over_half,
                        "always_busy": r.always_busy,
                    }),
                )
            }
            Experiment::Fig8 => run_fig8(study, analyses),
            Experiment::Fig9 => {
                let r = &analyses.durations;
                let (mf, mt) = r.means();
                (
                    report::render_fig9(r),
                    json!({
                        "median": r.median_secs(),
                        "percentile_at_cap": r.percentile_at_cap(),
                        "mean_full": mf, "mean_truncated": mt,
                    }),
                )
            }
            Experiment::Fig10 => run_fig10(study, analyses),
            Experiment::Fig11 => match &analyses.clustering {
                Some(c) => (
                    report::render_fig11(c),
                    json!({
                        "qualifying_cells": c.qualifying_cells,
                        "threshold": c.min_mean_prb,
                        "cluster_sizes": c.clusters.iter().map(|cl| cl.cells.len()).collect::<Vec<_>>(),
                        "cluster_peaks": c.clusters.iter().map(|cl| cl.peak_cars).collect::<Vec<_>>(),
                    }),
                ),
                None => (
                    "Figure 11 — no cells qualified as busy at any threshold\n".to_string(),
                    Value::Null,
                ),
            },
            Experiment::Sec45 => {
                let r = &analyses.handovers;
                let (p70, p90) = r.p70_p90();
                (
                    report::render_sec45(r),
                    json!({
                        "sessions": r.sessions,
                        "median": r.median(),
                        "p70": p70, "p90": p90,
                        "by_kind": r.by_kind,
                    }),
                )
            }
            Experiment::Tab3 => (
                report::render_table3(&analyses.carriers),
                serde_json::to_value(analyses.carriers).unwrap_or(Value::Null),
            ),
        };
        Ok(ExperimentOutput {
            experiment: self,
            text,
            data,
        })
    }
}

/// One regenerated artifact.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Which artifact this is.
    pub experiment: Experiment,
    /// Terminal rendering.
    pub text: String,
    /// Machine-readable values (for EXPERIMENTS.md and benches).
    pub data: Value,
}

/// The two most-loaded car-visited cells — Figure 1's and Figure 10's
/// cell picks both start from this ranking.
fn busiest_cells(study: &StudyData, analyses: &StudyAnalyses) -> Vec<CellId> {
    let model = study.load_model();
    let mut ranked: Vec<(CellId, f64)> = analyses
        .concurrency
        .cells()
        .map(|c| (c, model.series(c).mean()))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.into_iter().map(|(c, _)| c).collect()
}

fn run_fig1(study: &StudyData, analyses: &StudyAnalyses) -> (String, Value) {
    // The paper's field test ran on ordinarily-loaded production cells
    // whose diurnal average sits well below saturation — that contrast
    // is the figure. Pick the two car-visited cells whose mean
    // utilization is closest to 50%.
    let model = study.load_model();
    let mut ranked: Vec<(CellId, f64)> = analyses
        .concurrency
        .cells()
        .map(|c| (c, model.series(c).mean()))
        .collect();
    ranked.sort_by(|x, y| {
        (x.1 - 0.5)
            .abs()
            .total_cmp(&(y.1 - 0.5).abs())
            .then_with(|| x.0.cmp(&y.0))
    });
    let cells: Vec<CellId> = ranked.into_iter().map(|(c, _)| c).collect();
    let (Some(&a), Some(&b)) = (cells.first(), cells.get(1)) else {
        return ("Figure 1 — no car-visited cells in study\n".into(), Value::Null);
    };
    let model = study.load_model();
    let exp = GreedyExperiment::paper([a, b], study.config.period.days() as u64 / 2);
    let classes = conncar_fota::greedy::classes_for(&model, [a, b]);
    let result = greedy_saturation(&exp, &study.ledger, &study.background, classes);
    let text = report::render_fig1(&result);
    let data = json!({
        "cells": [a.to_string(), b.to_string()],
        "test_window_means": [result.test_window_mean(0), result.test_window_mean(1)],
        "baseline_window_means": [result.baseline_window_mean(0), result.baseline_window_mean(1)],
    });
    (text, data)
}

fn run_fig8(study: &StudyData, analyses: &StudyAnalyses) -> (String, Value) {
    match analyses.concurrency.busiest_cell_day(&study.clean) {
        Some((cell, day, _)) => {
            let g = cell_day_gantt(&study.clean, cell, day);
            let text = report::render_fig8(&g);
            let data = json!({
                "cell": g.cell.to_string(),
                "day": g.day,
                "distinct_cars": g.distinct_cars,
                "peak_bin": g.peak.0.index(),
                "peak_concurrent": g.peak.1,
            });
            (text, data)
        }
        None => ("Figure 8 — empty dataset\n".into(), Value::Null),
    }
}

fn run_fig10(study: &StudyData, analyses: &StudyAnalyses) -> (String, Value) {
    let ranked = busiest_cells(study, analyses);
    if ranked.is_empty() {
        return ("Figure 10 — empty dataset\n".into(), Value::Null);
    }
    // Cell A: the busy cell with the most concurrent cars. Cell B: a
    // busy cell with few cars (the paper's second panel).
    let idx = &analyses.concurrency;
    let car_mass = |c: CellId| idx.weekly_profile(c).iter().sum::<f64>();
    let top_busy: Vec<CellId> = ranked.iter().take(20).copied().collect();
    let a = *top_busy
        .iter()
        .max_by(|x, y| car_mass(**x).total_cmp(&car_mass(**y)))
        .expect("non-empty");
    let b = *top_busy
        .iter()
        .filter(|c| **c != a)
        .min_by(|x, y| car_mass(**x).total_cmp(&car_mass(**y)))
        .unwrap_or(&a);
    let model = study.load_model();
    let weekly_prb = |cell: CellId| -> Vec<f64> {
        let series = model.series(cell);
        let weeks = study.config.period.whole_weeks().max(1) as f64;
        let mut sums = vec![0.0f64; BINS_PER_WEEK];
        for (i, v) in series.values.iter().enumerate() {
            let bin = BinIndex(i as u64);
            if bin.0 < study.config.period.whole_weeks() as u64 * BINS_PER_WEEK as u64 {
                sums[bin.week_bin(study.config.period.start_day()).index()] += v / weeks;
            }
        }
        sums
    };
    let panels = vec![
        (a.to_string(), idx.weekly_profile(a), weekly_prb(a)),
        (b.to_string(), idx.weekly_profile(b), weekly_prb(b)),
    ];
    let text = report::render_fig10(&panels);
    let data = json!({
        "cells": [a.to_string(), b.to_string()],
        "car_mass": [car_mass(a), car_mass(b)],
    });
    (text, data)
}

/// Run every experiment, returning outputs in paper order.
pub fn run_all(study: &StudyData, analyses: &StudyAnalyses) -> Result<Vec<ExperimentOutput>> {
    Experiment::ALL
        .into_iter()
        .map(|e| e.run(study, analyses))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_round_trip() {
        for e in Experiment::ALL {
            assert_eq!(Experiment::from_id(e.id()), Some(e));
            assert!(!e.title().is_empty());
        }
        assert_eq!(Experiment::from_id("nope"), None);
    }

    #[test]
    fn all_experiments_run_on_tiny_study() {
        let (study, analyses) = crate::testutil::tiny_fixture();
        let outputs = run_all(study, analyses).unwrap();
        assert_eq!(outputs.len(), 15);
        for o in &outputs {
            assert!(
                o.text.len() > 20,
                "{} produced almost no text",
                o.experiment.id()
            );
        }
        // Figure 1 must actually saturate.
        let fig1 = &outputs[0];
        let means = fig1.data["test_window_means"].as_array().unwrap();
        assert!(means[0].as_f64().unwrap() > 0.99);
    }
}

//! Workspace umbrella package.
//!
//! This package exists to host the workspace-level `examples/` and
//! `tests/` directories; the real functionality lives in the member
//! crates (`conncar`, `conncar-radio`, ...). It re-exports the top-level
//! API crate for convenience so examples can simply `use conncar::...`.
pub use conncar;

//! `conncar` — record/replay deterministic pipeline runs and serve
//! ad-hoc queries.
//!
//! ```text
//! conncar record <fixture> [--out DIR]   # record one golden-corpus fixture
//! conncar record --all [--out DIR]       # record the whole corpus
//! conncar record --list                  # list corpus fixture names
//! conncar replay <dir>                   # replay DIR/trace.json against DIR/golden.json
//! conncar replay <trace.json> <golden.json>
//! conncar build [scale/build flags]      # out-of-core streaming build, one JSON metrics line
//! conncar query [filter/agg flags]       # one-shot query against a generated store
//! conncar serve [server flags]           # framed-TCP query server (stops on stdin EOF)
//! conncar stats --addr HOST:PORT         # one-shot live-metrics snapshot of a server
//! conncar top --addr HOST:PORT           # interval-polling dashboard over the same wire
//! ```
//!
//! `record` writes `<out>/<name>/trace.json` (the replayable capture)
//! and `<out>/<name>/golden.json` (per-stage digests) side by side;
//! `--out` defaults to `tests/golden`. `replay` reconstructs the run
//! from the trace alone and diffs every stage, printing a report that
//! names the first diverging stage. `query` generates the selected
//! study fixture, builds the store, runs one `QueryRequest` and prints
//! the result plus its `QueryStats`; `serve` starts the conncar-serve
//! front door on the same store and runs until stdin closes. `stats`
//! fetches one versioned `ServeSnapshot` from a *running* server over
//! the stats wire frame and prints the deterministic dashboard; `top`
//! repaints that dashboard every `--interval` milliseconds (driven by
//! the injected monotonic clock) until `--ticks` renders are done or
//! the server goes away.
//!
//! Exit codes: 0 clean, 1 divergence/refused query, 2 usage/IO error.

use conncar::{build_streamed, BuildConfig, StudyConfig, StudyData};
use conncar_replay::{corpus, verify_and_replay, Recipe};
use conncar_obs::{Clock, MonotonicClock};
use conncar_serve::{stats, Aggregation, QueryRequest, ServeClient, ServeEngine, ServeServer};
use conncar_store::{CdrStore, Filter, QueryStats, RecordKind};
use conncar_types::{BaseStationId, CarId, Carrier, CellId, Duration, Timestamp};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("record") => record_cmd(args.collect()),
        Some("replay") => replay_cmd(args.collect()),
        Some("build") => build_cmd(args.collect()),
        Some("query") => query_cmd(args.collect()),
        Some("serve") => serve_cmd(args.collect()),
        Some("stats") => stats_cmd(args.collect()),
        Some("top") => top_cmd(args.collect()),
        Some("--help") | Some("-h") => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        Some(other) => usage(&format!("unknown subcommand `{other}`")),
        None => usage("a subcommand is required"),
    }
}

const HELP: &str = "conncar: deterministic record/replay and query serving for the study pipeline\n\
usage:\n\
  conncar record <fixture> [--out DIR]   record one golden-corpus fixture\n\
  conncar record --all [--out DIR]       record the whole corpus\n\
  conncar record --list                  list corpus fixture names\n\
  conncar replay <dir>                   replay DIR/trace.json against DIR/golden.json\n\
  conncar replay <trace.json> <golden.json>\n\
  conncar build [--fixture tiny|small|paper] [--cars N] [--days N] [--shards N]\n\
                [--chunk-cars N] [--segment-hours N]\n\
                streaming out-of-core build; prints one JSON metrics line on stdout\n\
  conncar query [--fixture tiny|small] [--shards N]\n\
                [--car ID]... [--cell STATION:SECTOR:CARRIER]... [--carrier C1..C5]\n\
                [--window START_SECS END_SECS] [--kind any|shorter:SECS|atleast:SECS]\n\
                [--agg count|rows|per-car-seconds|histogram] [--limit N]\n\
  conncar serve [--fixture tiny|small] [--shards N] [--addr HOST:PORT]\n\
                [--workers N] [--queue N] [--cache N] [--epoch N]\n\
  conncar stats --addr HOST:PORT         one-shot live-metrics snapshot of a server\n\
  conncar top --addr HOST:PORT [--interval MS] [--ticks N]\n\
                                         repaint the snapshot dashboard per interval\n";

/// Parse the shared `--fixture`/`--shards` pair and build the store.
struct StoreOpts {
    fixture: String,
    shards: Option<usize>,
}

impl StoreOpts {
    fn new() -> StoreOpts {
        StoreOpts {
            fixture: "tiny".to_string(),
            shards: None,
        }
    }

    /// Consume the flag if it is one of ours.
    fn take(
        &mut self,
        flag: &str,
        it: &mut impl Iterator<Item = String>,
    ) -> Result<bool, String> {
        match flag {
            "--fixture" => {
                self.fixture = it.next().ok_or("--fixture needs a value")?;
                Ok(true)
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                self.shards = Some(v.parse().map_err(|_| format!("bad --shards `{v}`"))?);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn build(&self) -> Result<CdrStore, String> {
        let cfg = match self.fixture.as_str() {
            "tiny" => StudyConfig::tiny(),
            "small" => StudyConfig::small(),
            other => return Err(format!("unknown fixture `{other}` (tiny|small)")),
        };
        let study = StudyData::generate(&cfg).map_err(|e| format!("generating study: {e}"))?;
        eprintln!(
            "fixture `{}`: {} cars, {} cleaned records",
            self.fixture,
            study.total_cars(),
            study.clean.len()
        );
        Ok(match self.shards {
            Some(n) => CdrStore::build(&study.clean, n),
            None => CdrStore::build_auto(&study.clean),
        })
    }
}

fn parse_cell(v: &str) -> Result<CellId, String> {
    let parts: Vec<&str> = v.split(':').collect();
    let [station, sector, carrier] = parts.as_slice() else {
        return Err(format!("bad --cell `{v}` (want STATION:SECTOR:CARRIER)"));
    };
    let station: u32 = station.parse().map_err(|_| format!("bad station `{station}`"))?;
    let sector: u8 = sector.parse().map_err(|_| format!("bad sector `{sector}`"))?;
    let carrier = parse_carrier(carrier)?;
    Ok(CellId::new(BaseStationId(station), sector, carrier))
}

fn parse_carrier(v: &str) -> Result<Carrier, String> {
    match v {
        "C1" | "c1" => Ok(Carrier::C1),
        "C2" | "c2" => Ok(Carrier::C2),
        "C3" | "c3" => Ok(Carrier::C3),
        "C4" | "c4" => Ok(Carrier::C4),
        "C5" | "c5" => Ok(Carrier::C5),
        other => Err(format!("bad carrier `{other}` (C1..C5)")),
    }
}

fn parse_kind(v: &str) -> Result<RecordKind, String> {
    if v == "any" {
        return Ok(RecordKind::Any);
    }
    let parse_secs = |s: &str| -> Result<u64, String> {
        s.parse().map_err(|_| format!("bad duration `{s}` in --kind"))
    };
    if let Some(s) = v.strip_prefix("shorter:") {
        return Ok(RecordKind::ShorterThan(Duration::from_secs(parse_secs(s)?)));
    }
    if let Some(s) = v.strip_prefix("atleast:") {
        return Ok(RecordKind::AtLeast(Duration::from_secs(parse_secs(s)?)));
    }
    Err(format!("bad --kind `{v}` (any|shorter:SECS|atleast:SECS)"))
}

fn print_stats(stats: &QueryStats, cache_hit: bool) {
    println!(
        "stats: rows_scanned={} rows_matched={} shards_scanned={} shards_pruned={} \
         index_scans={} full_scans={} scan_nanos={} cache_hit={}",
        stats.rows_scanned,
        stats.rows_matched,
        stats.shards_scanned,
        stats.shards_pruned,
        stats.index_scans,
        stats.full_scans,
        stats.scan_nanos,
        cache_hit
    );
}

fn query_cmd(args: Vec<String>) -> ExitCode {
    let mut store_opts = StoreOpts::new();
    let mut cars: Vec<CarId> = Vec::new();
    let mut cells: Vec<CellId> = Vec::new();
    let mut carrier: Option<Carrier> = None;
    let mut window: Option<(u64, u64)> = None;
    let mut kind = RecordKind::Any;
    let mut agg = "count".to_string();
    let mut limit = 20usize;

    let mut it = args.into_iter();
    let parsed = (|| -> Result<(), String> {
        while let Some(arg) = it.next() {
            if store_opts.take(&arg, &mut it)? {
                continue;
            }
            match arg.as_str() {
                "--car" => {
                    let v = it.next().ok_or("--car needs a value")?;
                    cars.push(CarId(v.parse().map_err(|_| format!("bad --car `{v}`"))?));
                }
                "--cell" => cells.push(parse_cell(&it.next().ok_or("--cell needs a value")?)?),
                "--carrier" => {
                    carrier = Some(parse_carrier(&it.next().ok_or("--carrier needs a value")?)?);
                }
                "--window" => {
                    let s = it.next().ok_or("--window needs START and END")?;
                    let e = it.next().ok_or("--window needs START and END")?;
                    let s: u64 = s.parse().map_err(|_| format!("bad window start `{s}`"))?;
                    let e: u64 = e.parse().map_err(|_| format!("bad window end `{e}`"))?;
                    window = Some((s, e));
                }
                "--kind" => kind = parse_kind(&it.next().ok_or("--kind needs a value")?)?,
                "--agg" => agg = it.next().ok_or("--agg needs a value")?,
                "--limit" => {
                    let v = it.next().ok_or("--limit needs a value")?;
                    limit = v.parse().map_err(|_| format!("bad --limit `{v}`"))?;
                }
                other => return Err(format!("unknown query flag `{other}`")),
            }
        }
        Ok(())
    })();
    if let Err(msg) = parsed {
        return usage(&msg);
    }

    let store = match store_opts.build() {
        Ok(s) => s,
        Err(msg) => return usage(&msg),
    };

    let mut filter = Filter::all().kind(kind);
    if !cars.is_empty() {
        filter = filter.cars(cars);
    }
    if !cells.is_empty() {
        filter = filter.cells(cells);
    }
    if let Some(c) = carrier {
        filter = filter.carrier(c);
    }
    if let Some((s, e)) = window {
        filter = filter.window(Timestamp::from_secs(s), Timestamp::from_secs(e));
    }
    let agg = match agg.as_str() {
        "count" => Aggregation::Count,
        "rows" => Aggregation::Rows,
        "per-car-seconds" => Aggregation::PerCarSeconds,
        "histogram" => Aggregation::CellBinHistogram {
            bin_limit: store.period().total_bins(),
        },
        other => return usage(&format!("unknown --agg `{other}`")),
    };

    let req = QueryRequest::new(filter, agg);
    let mut engine = ServeEngine::new(Arc::new(store), 1, 1);
    match engine.submit(&req) {
        Ok(resp) => {
            print!("{}", resp.value.render(limit));
            print_stats(&resp.stats, resp.cache_hit);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("query refused: {e}");
            ExitCode::FAILURE
        }
    }
}

fn build_cmd(args: Vec<String>) -> ExitCode {
    let mut fixture = "paper".to_string();
    let mut cars: Option<u32> = None;
    let mut days: Option<u32> = None;
    let mut shards = 8usize;
    let mut chunk_cars: Option<u32> = None;
    let mut segment_hours: Option<u32> = None;

    let mut it = args.into_iter();
    let parsed = (|| -> Result<(), String> {
        fn num<T: std::str::FromStr>(
            name: &str,
            it: &mut impl Iterator<Item = String>,
        ) -> Result<T, String> {
            let v = it.next().ok_or(format!("{name} needs a value"))?;
            v.parse().map_err(|_| format!("bad {name} `{v}`"))
        }
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--fixture" => fixture = it.next().ok_or("--fixture needs a value")?,
                "--cars" => cars = Some(num("--cars", &mut it)?),
                "--days" => days = Some(num("--days", &mut it)?),
                "--shards" => shards = num("--shards", &mut it)?,
                "--chunk-cars" => chunk_cars = Some(num("--chunk-cars", &mut it)?),
                "--segment-hours" => segment_hours = Some(num("--segment-hours", &mut it)?),
                other => return Err(format!("unknown build flag `{other}`")),
            }
        }
        Ok(())
    })();
    if let Err(msg) = parsed {
        return usage(&msg);
    }

    let mut cfg = match fixture.as_str() {
        "tiny" => StudyConfig::tiny(),
        "small" => StudyConfig::small(),
        "paper" => StudyConfig::paper(),
        other => return usage(&format!("unknown fixture `{other}` (tiny|small|paper)")),
    };
    if let Some(c) = cars {
        cfg.fleet.cars = c;
    }
    if let Some(d) = days {
        cfg.period = match conncar_types::StudyPeriod::new(cfg.period.start_day(), d) {
            Ok(p) => p,
            Err(e) => return usage(&format!("bad --days: {e}")),
        };
        // A shortened window can strand the fixture's loss days past the
        // end; drop them rather than fail validation on a smoke run.
        let before = cfg.faults.loss_days.len();
        cfg.faults.loss_days.retain(|&l| l < u64::from(d));
        if cfg.faults.loss_days.len() != before {
            eprintln!(
                "note: dropped {} loss day(s) outside the {d}-day window",
                before - cfg.faults.loss_days.len()
            );
        }
    }
    if chunk_cars.is_some() || segment_hours.is_some() {
        let mut b = cfg.build.clone().unwrap_or_default();
        if let Some(c) = chunk_cars {
            b.chunk_cars = c;
        }
        if let Some(h) = segment_hours {
            b.segment_hours = h;
        }
        cfg.build = Some(b);
    }

    let clock = MonotonicClock::new();
    let t0 = clock.now_nanos();
    match build_streamed(&cfg, shards) {
        Ok(b) => {
            let wall_ns = clock.now_nanos().saturating_sub(t0).max(1);
            let rows = b.rows();
            let rows_per_sec = rows as f64 * 1e9 / wall_ns as f64;
            let resolved = b.build.clone();
            eprintln!(
                "built {} cars x {} days -> {} clean rows in {} shard(s), {} chunk(s) of {} cars",
                cfg.fleet.cars,
                cfg.period.days(),
                rows,
                b.store.shard_count(),
                b.chunks.len(),
                resolved.chunk_cars,
            );
            // One flat, machine-readable line; the scale bench and the
            // CI gate consume exactly this.
            println!(
                "{{\"cars\":{},\"days\":{},\"shards\":{},\"chunk_cars\":{},\"segment_hours\":{},\
                 \"chunks\":{},\"rows_truth\":{},\"rows_clean\":{},\"wall_ns\":{},\
                 \"rows_per_sec\":{:.1},\"peak_rss_bytes\":{}}}",
                cfg.fleet.cars,
                cfg.period.days(),
                b.store.shard_count(),
                resolved.chunk_cars,
                resolved.segment_hours,
                b.chunks.len(),
                b.run_report.records_truth,
                rows,
                wall_ns,
                rows_per_sec,
                conncar_obs::peak_rss_bytes(),
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: streaming build: {e}");
            ExitCode::FAILURE
        }
    }
}

fn serve_cmd(args: Vec<String>) -> ExitCode {
    let mut store_opts = StoreOpts::new();
    let mut addr = "127.0.0.1:0".to_string();
    let mut workers = 4usize;
    let mut queue = 256usize;
    let mut cache = 256usize;
    let mut epoch = 16usize;

    let mut it = args.into_iter();
    let parsed = (|| -> Result<(), String> {
        while let Some(arg) = it.next() {
            if store_opts.take(&arg, &mut it)? {
                continue;
            }
            fn num(
                name: &str,
                it: &mut impl Iterator<Item = String>,
            ) -> Result<usize, String> {
                let v = it.next().ok_or(format!("{name} needs a value"))?;
                v.parse().map_err(|_| format!("bad {name} `{v}`"))
            }
            match arg.as_str() {
                "--addr" => addr = it.next().ok_or("--addr needs a value")?,
                "--workers" => workers = num("--workers", &mut it)?,
                "--queue" => queue = num("--queue", &mut it)?,
                "--cache" => cache = num("--cache", &mut it)?,
                "--epoch" => epoch = num("--epoch", &mut it)?,
                other => return Err(format!("unknown serve flag `{other}`")),
            }
        }
        Ok(())
    })();
    if let Err(msg) = parsed {
        return usage(&msg);
    }

    let store = match store_opts.build() {
        Ok(s) => s,
        Err(msg) => return usage(&msg),
    };
    let engine = ServeEngine::new(Arc::new(store), cache, epoch);
    let server = match ServeServer::bind(addr.as_str(), engine, workers, queue) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: binding {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    println!("serving on {} (EOF on stdin stops)", server.local_addr());
    // Block until the controlling process closes stdin, then drain.
    let mut sink = String::new();
    while std::io::stdin().read_line(&mut sink).unwrap_or(0) > 0 {
        sink.clear();
    }
    let engine = match server.shutdown() {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("error: shutdown: {e}");
            return ExitCode::from(2);
        }
    };
    println!("served counters:");
    for (key, value) in engine.counters().iter() {
        println!("  {key} = {value}");
    }
    ExitCode::SUCCESS
}

/// Parse the `--addr` flag shared by `stats` and `top`; both talk to a
/// server someone else started (typically `conncar serve`).
fn parse_addr_flags(
    cmd: &str,
    args: Vec<String>,
    mut extra: impl FnMut(&str, &mut dyn Iterator<Item = String>) -> Result<bool, String>,
) -> Result<String, String> {
    let mut addr: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--addr" {
            addr = Some(it.next().ok_or("--addr needs a value")?);
        } else if !extra(&arg, &mut it)? {
            return Err(format!("unknown {cmd} flag `{arg}`"));
        }
    }
    addr.ok_or(format!("{cmd} needs --addr HOST:PORT (a running `conncar serve`)"))
}

fn stats_cmd(args: Vec<String>) -> ExitCode {
    let addr = match parse_addr_flags("stats", args, |_, _| Ok(false)) {
        Ok(a) => a,
        Err(msg) => return usage(&msg),
    };
    let mut client = match ServeClient::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: connecting {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    match client.stats() {
        Ok(snap) => {
            print!("{}", stats::render(&snap));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: fetching stats: {e}");
            ExitCode::FAILURE
        }
    }
}

fn top_cmd(args: Vec<String>) -> ExitCode {
    let mut interval_ms = 1000u64;
    let mut ticks = 0u64;
    let parsed = parse_addr_flags("top", args, |flag, it| match flag {
        "--interval" => {
            let v = it.next().ok_or("--interval needs a value (milliseconds)")?;
            interval_ms = v.parse().map_err(|_| format!("bad --interval `{v}`"))?;
            Ok(true)
        }
        "--ticks" => {
            let v = it.next().ok_or("--ticks needs a value")?;
            ticks = v.parse().map_err(|_| format!("bad --ticks `{v}`"))?;
            Ok(true)
        }
        _ => Ok(false),
    });
    let addr = match parsed {
        Ok(a) => a,
        Err(msg) => return usage(&msg),
    };
    let mut client = match ServeClient::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: connecting {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    // The interval is measured by the injected clock, so the loop's
    // pacing shares the rest of the pipeline's time-source discipline.
    let clock = MonotonicClock::default();
    let mut out = std::io::stdout();
    match stats::run_top(
        &clock,
        interval_ms.saturating_mul(1_000_000),
        ticks,
        || client.stats(),
        &mut out,
    ) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // `--ticks 0` polls until the server goes away; the final
            // fetch error is the expected way out, not a failure.
            if ticks == 0 {
                eprintln!("top: server gone: {e}");
                ExitCode::SUCCESS
            } else {
                eprintln!("error: top: {e}");
                ExitCode::FAILURE
            }
        }
    }
}

fn record_cmd(args: Vec<String>) -> ExitCode {
    let mut out_dir = PathBuf::from("tests/golden");
    let mut names: Vec<String> = Vec::new();
    let mut all = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for r in corpus() {
                    println!("{} (shards {})", r.name, r.shards);
                }
                return ExitCode::SUCCESS;
            }
            "--all" => all = true,
            "--out" => match it.next() {
                Some(v) => out_dir = PathBuf::from(v),
                None => return usage("--out needs a value"),
            },
            flag if flag.starts_with('-') => {
                return usage(&format!("unknown record flag `{flag}`"))
            }
            name => names.push(name.to_string()),
        }
    }

    let recipes = corpus();
    let selected: Vec<Recipe> = if all {
        recipes
    } else if names.is_empty() {
        return usage("record needs a fixture name, or --all");
    } else {
        let mut picked = Vec::new();
        for name in &names {
            match recipes.iter().find(|r| r.name == name.as_str()) {
                Some(r) => picked.push(*r),
                None => {
                    eprintln!(
                        "error: no corpus fixture named `{name}` (try `conncar record --list`)"
                    );
                    return ExitCode::from(2);
                }
            }
        }
        picked
    };

    for recipe in selected {
        let rec = match recipe.record() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: recording `{}`: {e}", recipe.name);
                return ExitCode::from(2);
            }
        };
        let dir = out_dir.join(recipe.name);
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(dir.join("trace.json"), rec.trace.to_envelope_json()))
            .and_then(|()| std::fs::write(dir.join("golden.json"), rec.golden.to_json()))
        {
            eprintln!("error: writing {}: {e}", dir.display());
            return ExitCode::from(2);
        }
        println!(
            "recorded {} -> {} (trace id {})",
            recipe.name,
            dir.display(),
            rec.golden.trace_id
        );
    }
    ExitCode::SUCCESS
}

fn replay_cmd(args: Vec<String>) -> ExitCode {
    let (trace_path, golden_path) = match args.as_slice() {
        [dir] if Path::new(dir).is_dir() => {
            let d = Path::new(dir);
            (d.join("trace.json"), d.join("golden.json"))
        }
        [trace] => {
            // A bare trace file: expect golden.json beside it.
            let t = PathBuf::from(trace);
            let g = t.with_file_name("golden.json");
            (t, g)
        }
        [trace, golden] => (PathBuf::from(trace), PathBuf::from(golden)),
        _ => return usage("replay takes a fixture dir, a trace file, or <trace> <golden>"),
    };

    let trace_json = match std::fs::read_to_string(&trace_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: reading {}: {e}", trace_path.display());
            return ExitCode::from(2);
        }
    };
    let golden_json = match std::fs::read_to_string(&golden_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: reading {}: {e}", golden_path.display());
            return ExitCode::from(2);
        }
    };

    let name = trace_path
        .parent()
        .and_then(Path::file_name)
        .map_or_else(|| "run".to_string(), |n| n.to_string_lossy().into_owned());
    let report = verify_and_replay(&name, &trace_json, &golden_json);
    print!("{}", report.render());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n{HELP}");
    ExitCode::from(2)
}

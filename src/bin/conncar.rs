//! `conncar` — record and replay deterministic pipeline runs.
//!
//! ```text
//! conncar record <fixture> [--out DIR]   # record one golden-corpus fixture
//! conncar record --all [--out DIR]       # record the whole corpus
//! conncar record --list                  # list corpus fixture names
//! conncar replay <dir>                   # replay DIR/trace.json against DIR/golden.json
//! conncar replay <trace.json> <golden.json>
//! ```
//!
//! `record` writes `<out>/<name>/trace.json` (the replayable capture)
//! and `<out>/<name>/golden.json` (per-stage digests) side by side;
//! `--out` defaults to `tests/golden`. `replay` reconstructs the run
//! from the trace alone and diffs every stage, printing a report that
//! names the first diverging stage.
//!
//! Exit codes: 0 clean, 1 divergence, 2 usage/IO error.

use conncar_replay::{corpus, verify_and_replay, Recipe};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("record") => record_cmd(args.collect()),
        Some("replay") => replay_cmd(args.collect()),
        Some("--help") | Some("-h") => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        Some(other) => usage(&format!("unknown subcommand `{other}`")),
        None => usage("a subcommand is required"),
    }
}

const HELP: &str = "conncar: deterministic record/replay for the study pipeline\n\
usage:\n\
  conncar record <fixture> [--out DIR]   record one golden-corpus fixture\n\
  conncar record --all [--out DIR]       record the whole corpus\n\
  conncar record --list                  list corpus fixture names\n\
  conncar replay <dir>                   replay DIR/trace.json against DIR/golden.json\n\
  conncar replay <trace.json> <golden.json>\n";

fn record_cmd(args: Vec<String>) -> ExitCode {
    let mut out_dir = PathBuf::from("tests/golden");
    let mut names: Vec<String> = Vec::new();
    let mut all = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for r in corpus() {
                    println!("{} (shards {})", r.name, r.shards);
                }
                return ExitCode::SUCCESS;
            }
            "--all" => all = true,
            "--out" => match it.next() {
                Some(v) => out_dir = PathBuf::from(v),
                None => return usage("--out needs a value"),
            },
            flag if flag.starts_with('-') => {
                return usage(&format!("unknown record flag `{flag}`"))
            }
            name => names.push(name.to_string()),
        }
    }

    let recipes = corpus();
    let selected: Vec<Recipe> = if all {
        recipes
    } else if names.is_empty() {
        return usage("record needs a fixture name, or --all");
    } else {
        let mut picked = Vec::new();
        for name in &names {
            match recipes.iter().find(|r| r.name == name.as_str()) {
                Some(r) => picked.push(*r),
                None => {
                    eprintln!(
                        "error: no corpus fixture named `{name}` (try `conncar record --list`)"
                    );
                    return ExitCode::from(2);
                }
            }
        }
        picked
    };

    for recipe in selected {
        let rec = match recipe.record() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: recording `{}`: {e}", recipe.name);
                return ExitCode::from(2);
            }
        };
        let dir = out_dir.join(recipe.name);
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(dir.join("trace.json"), rec.trace.to_envelope_json()))
            .and_then(|()| std::fs::write(dir.join("golden.json"), rec.golden.to_json()))
        {
            eprintln!("error: writing {}: {e}", dir.display());
            return ExitCode::from(2);
        }
        println!(
            "recorded {} -> {} (trace id {})",
            recipe.name,
            dir.display(),
            rec.golden.trace_id
        );
    }
    ExitCode::SUCCESS
}

fn replay_cmd(args: Vec<String>) -> ExitCode {
    let (trace_path, golden_path) = match args.as_slice() {
        [dir] if Path::new(dir).is_dir() => {
            let d = Path::new(dir);
            (d.join("trace.json"), d.join("golden.json"))
        }
        [trace] => {
            // A bare trace file: expect golden.json beside it.
            let t = PathBuf::from(trace);
            let g = t.with_file_name("golden.json");
            (t, g)
        }
        [trace, golden] => (PathBuf::from(trace), PathBuf::from(golden)),
        _ => return usage("replay takes a fixture dir, a trace file, or <trace> <golden>"),
    };

    let trace_json = match std::fs::read_to_string(&trace_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: reading {}: {e}", trace_path.display());
            return ExitCode::from(2);
        }
    };
    let golden_json = match std::fs::read_to_string(&golden_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: reading {}: {e}", golden_path.display());
            return ExitCode::from(2);
        }
    };

    let name = trace_path
        .parent()
        .and_then(Path::file_name)
        .map_or_else(|| "run".to_string(), |n| n.to_string_lossy().into_owned());
    let report = verify_and_replay(&name, &trace_json, &golden_json);
    print!("{}", report.render());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n{HELP}");
    ExitCode::from(2)
}
